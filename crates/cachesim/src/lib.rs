//! Trace-driven memory-hierarchy simulator.
//!
//! This crate substitutes for the paper's measurement substrate (real SGI
//! R10000 / UltraSparc IIe hardware read through PAPI): it models a
//! multi-level set-associative cache hierarchy with LRU replacement, a
//! fully-associative TLB, software prefetch, and a cycle cost model, and
//! accumulates PAPI-like [`Counters`] (loads, per-level misses, TLB
//! misses, cycles).
//!
//! The executor in `eco-exec` walks an IR program and feeds every memory
//! access to [`MemoryHierarchy::access`]; flop and loop-overhead costs
//! are added through [`MemoryHierarchy::add_flops`] and
//! [`MemoryHierarchy::add_loop_iterations`].
//!
//! Modelling choices (documented deviations from real hardware):
//!
//! * Caches are virtually indexed off a flat address space and arrays are
//!   laid out contiguously, which matches the paper's footnote-1
//!   assumption of a well-behaved page-colouring OS.
//! * A software prefetch brings the line into every cache level
//!   immediately; it pays the issue cost and the memory *bandwidth*
//!   occupancy (if the line comes from memory) but no latency stall —
//!   i.e. prefetch hides latency but cannot create bandwidth.
//! * Demand misses stall for the full per-level penalty; write-backs are
//!   not modelled (stores are write-allocate, write-back, but dirty
//!   evictions are free).
//! * Per-level miss counters count *demand* (load/store) misses only,
//!   like PAPI's `PAPI_L1_DCM`; prefetch fills are counted separately.
//!
//! # Examples
//!
//! ```
//! use eco_cachesim::{AccessKind, MemoryHierarchy};
//! use eco_machine::MachineDesc;
//!
//! let mut h = MemoryHierarchy::new(&MachineDesc::sgi_r10000());
//! h.access(0, AccessKind::Load);     // cold miss
//! h.access(8, AccessKind::Load);     // same 32-byte line: hit
//! let c = h.counters();
//! assert_eq!(c.loads, 2);
//! assert_eq!(c.cache_misses[0], 1);
//! ```

use eco_machine::{CacheDesc, MachineDesc, TlbDesc};

/// Maximum cache levels supported by the allocation-free attribution
/// path (`access_tagged` snapshots per-level miss counters into a fixed
/// array instead of cloning a `Vec` per access).
const MAX_LEVELS: usize = 8;

/// The kind of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A demand load.
    Load,
    /// A demand store (write-allocate).
    Store,
    /// A software prefetch (no stall, bandwidth + issue cost only).
    Prefetch,
}

/// PAPI-like event counters accumulated by the simulator.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Counters {
    /// Demand loads issued.
    pub loads: u64,
    /// Demand stores issued.
    pub stores: u64,
    /// Software prefetch instructions issued.
    pub prefetches: u64,
    /// Demand misses per cache level (index 0 = L1).
    pub cache_misses: Vec<u64>,
    /// Lines filled by prefetches, per cache level.
    pub prefetch_fills: Vec<u64>,
    /// TLB misses (demand and prefetch).
    pub tlb_misses: u64,
    /// Floating-point operations executed.
    pub flops: u64,
    /// Loop iterations executed (for overhead costing).
    pub loop_iterations: u64,
    /// Total cycles, in milli-cycles (divide by 1000).
    pub cycles_x1000: u64,
    /// Optional per-tag attribution (see
    /// [`MemoryHierarchy::access_tagged`]); empty unless tags are used.
    pub per_tag: Vec<TagCounters>,
}

/// Per-tag (typically per-array) attribution counters.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TagCounters {
    /// Demand accesses (loads + stores) with this tag.
    pub accesses: u64,
    /// Demand misses per cache level with this tag.
    pub misses: Vec<u64>,
    /// TLB misses with this tag.
    pub tlb_misses: u64,
}

impl Counters {
    /// Total cycles (rounded down from milli-cycles).
    pub fn cycles(&self) -> u64 {
        self.cycles_x1000 / 1000
    }

    /// The paper's "Loads" column counts prefetch instructions too
    /// (compare mm4 and mm5 in Table 1).
    pub fn loads_incl_prefetch(&self) -> u64 {
        self.loads + self.prefetches
    }

    /// Achieved MFLOPS given a clock rate in MHz.
    ///
    /// Returns 0.0 for an empty run.
    pub fn mflops(&self, clock_mhz: u64) -> f64 {
        if self.cycles_x1000 == 0 {
            return 0.0;
        }
        // flops / seconds = flops * clock_hz / cycles
        self.flops as f64 * clock_mhz as f64 * 1000.0 / self.cycles_x1000 as f64
    }

    /// Accumulates `other` into `self` (event counters add; per-level
    /// vectors extend to the longer of the two), so call sites summing
    /// measurements over several runs need no field-by-field copying.
    pub fn merge(&mut self, other: &Counters) {
        fn add_levels(into: &mut Vec<u64>, from: &[u64]) {
            if into.len() < from.len() {
                into.resize(from.len(), 0);
            }
            for (a, b) in into.iter_mut().zip(from) {
                *a += b;
            }
        }
        self.loads += other.loads;
        self.stores += other.stores;
        self.prefetches += other.prefetches;
        add_levels(&mut self.cache_misses, &other.cache_misses);
        add_levels(&mut self.prefetch_fills, &other.prefetch_fills);
        self.tlb_misses += other.tlb_misses;
        self.flops += other.flops;
        self.loop_iterations += other.loop_iterations;
        self.cycles_x1000 += other.cycles_x1000;
        if self.per_tag.len() < other.per_tag.len() {
            self.per_tag
                .resize(other.per_tag.len(), TagCounters::default());
        }
        for (a, b) in self.per_tag.iter_mut().zip(&other.per_tag) {
            a.accesses += b.accesses;
            add_levels(&mut a.misses, &b.misses);
            a.tlb_misses += b.tlb_misses;
        }
    }
}

/// Simulation-side telemetry that is *not* part of the architectural
/// [`Counters`]: how much of the access stream was serviced by the
/// exact fast-forward path instead of being walked access-by-access.
///
/// Kept separate from [`Counters`] on purpose — counters are compared
/// bit-exactly between the compiled and reference backends, and
/// fast-forward is a property of *how* the simulation ran, not of the
/// simulated machine. The number of walked accesses is recoverable as
/// `(loads + stores + prefetches) - ff_accesses`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SimStats {
    /// Fast-forward windows applied.
    pub ff_windows: u64,
    /// Accesses accounted arithmetically instead of walked.
    pub ff_accesses: u64,
    /// Fast-forwarded demand accesses per tag (parallel to
    /// `Counters::per_tag`; empty unless tagged streams are used).
    pub per_tag_ff: Vec<u64>,
}

impl SimStats {
    /// Accumulates `other` into `self` (mirrors [`Counters::merge`]).
    pub fn merge(&mut self, other: &SimStats) {
        self.ff_windows += other.ff_windows;
        self.ff_accesses += other.ff_accesses;
        if self.per_tag_ff.len() < other.per_tag_ff.len() {
            self.per_tag_ff.resize(other.per_tag_ff.len(), 0);
        }
        for (a, b) in self.per_tag_ff.iter_mut().zip(&other.per_tag_ff) {
            *a += b;
        }
    }
}

/// One strided access stream of a fused loop nest, in struct-of-arrays
/// batch form: iteration `t` of the loop touches `base + t * stride`
/// whenever `vlo <= t <= vhi`. A batch of streams is serviced in one
/// pass by [`MemoryHierarchy::access_streams`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamSpec {
    /// Byte address this stream would touch at iteration 0 (the address
    /// need only be mapped inside the `[vlo, vhi]` window).
    pub base: i64,
    /// Per-iteration byte delta (may be zero or negative).
    pub stride: i64,
    /// First iteration (inclusive) at which this stream is active.
    pub vlo: i64,
    /// Last iteration (inclusive) at which this stream is active.
    pub vhi: i64,
    /// Access kind of every access in the stream.
    pub kind: AccessKind,
    /// Attribution tag (array id); ignored unless attribution is on.
    pub tag: u32,
}

const INVALID: u64 = u64::MAX;

/// Fast-forward tuning: max line groups probed per window (all streams).
const FF_GROUP_BUDGET: i64 = 64;
/// Fast-forward tuning: max window length in iterations.
const FF_HORIZON_MAX: i64 = 1 << 20;
/// Fast-forward tuning: max iterations walked between re-probes once
/// probing keeps failing (exponential backoff bounds probe overhead on
/// streaming phases that are never resident).
const FF_WALK_MAX: i64 = 64;
/// Fast-forward tuning: consecutive event-dense windows before the
/// access pattern is declared hostile and fast-forward is suspended.
const FF_STRIKES: u32 = 3;
/// Fast-forward tuning: segments walked outright after striking out
/// before fast-forward is retried. Hostile phases (miss rates so high
/// that almost every access is an event, as in large-stencil sweeps)
/// then pay a few over-priced windows per cooldown instead of per
/// window, bounding the overhead over a plain walk to a few percent.
const FF_COOLDOWN: u32 = 256;

/// Exclusive end of the run of iterations `t, t+1, …` (capped at
/// `t_limit`) whose addresses stay inside the `1 << bits` block of
/// `addr` (the address at iteration `t`) under `stride`.
#[inline]
fn block_run_end(addr: i64, stride: i64, bits: u32, t: i64, t_limit: i64) -> i64 {
    if stride == 0 {
        return t_limit;
    }
    let mask = (1i64 << bits) - 1;
    let further = if stride > 0 {
        (mask - (addr & mask)) / stride
    } else {
        (addr & mask) / -stride
    };
    (t.saturating_add(further).saturating_add(1)).min(t_limit)
}

/// The address at iteration `t`, when representable and non-negative;
/// `None` makes the fast-forward scan stop (the walker then reproduces
/// the reference wrapping arithmetic exactly).
#[inline]
fn stream_addr(base: i64, stride: i64, t: i64) -> Option<i64> {
    t.checked_mul(stride)
        .and_then(|o| base.checked_add(o))
        .filter(|a| *a >= 0)
}

/// Sentinel slot for a window group whose block was probed non-resident.
/// Patched to the real slot once the group's head access walks and fills.
const WIN_MISS: u32 = u32::MAX;

/// One contiguous same-block (line or page) run of one stream inside a
/// fast-forward window: iterations `[t_first, t_last]` of the stream all
/// touch `block`.
#[derive(Debug, Clone, Copy)]
struct WinGroup {
    t_first: i64,
    t_last: i64,
    /// Line or page number.
    block: u64,
    /// Slot holding the block at probe time; [`WIN_MISS`] when absent.
    slot: u32,
}

/// A window access that must be walked: its line or page was probed
/// non-resident, so it is the one kind of access whose effect (victim
/// choice, fills, penalties) depends on live state.
#[derive(Debug, Clone, Copy)]
struct WinEvent {
    t: i64,
    /// Global position within the iteration: the index (into the
    /// segment's active-stream list) of the *first copy* of the lane.
    pos: u32,
    /// Lane that raised the event.
    lane: u32,
    /// The probed-absent block (line or page number) — used to keep only
    /// the first event per block.
    block: u64,
}

/// One *deduplicated* access stream of a segment: unroll-and-jammed
/// loops produce many active streams with identical `(base, stride)`
/// (every copy touches the same address on the same iteration), so the
/// window machinery probes and bookkeeps per lane and expands back to
/// per-copy global positions (`pos_lo..pos_hi` into
/// [`WindowScratch::lane_pos`], ascending) only where exactness needs
/// them — LRU stamp values and issue counts.
#[derive(Debug, Clone, Copy)]
struct Lane {
    base: i64,
    stride: i64,
    kind: AccessKind,
    tag: u32,
    pos_lo: u32,
    pos_hi: u32,
}

/// A set of lanes whose address sequences provably land in the *same*
/// block (line or page) on *every* iteration, so the window probes and
/// bookkeeps the whole set once per domain. Two lanes merge when they
/// share a stride and their base offset keeps every access inside one
/// block: with `g = gcd(stride, block_size)` (power of two), the block
/// offset of lane `i`'s access cycles through `base_i mod g + j * g`,
/// so `base_j - base_i + (base_i mod g) < g` pins both lanes to one
/// block for all `t`. (Covers unroll copies, split load/store streams
/// of one array, and neighbor offsets inside a line.)
#[derive(Debug, Clone, Copy)]
struct BlockLane {
    /// Anchor (smallest-base member) address parameters.
    base: i64,
    stride: i64,
    /// `[pos_lo, pos_hi)` into the domain's position array: the union
    /// of the member lanes' active positions, ascending.
    pos_lo: u32,
    pos_hi: u32,
}

/// Reused allocations for [`MemoryHierarchy::ff_window`].
#[derive(Debug, Clone, Default)]
struct WindowScratch {
    /// Deduplicated streams of the current segment.
    lanes: Vec<Lane>,
    /// Lane id of each active position (build-time scratch).
    lane_of: Vec<u32>,
    /// Active positions grouped by lane, ascending within a lane.
    lane_pos: Vec<u32>,
    /// Line-domain block-lanes and their grouped positions.
    bl_l: Vec<BlockLane>,
    blpos_l: Vec<u32>,
    /// Page-domain block-lanes and their grouped positions.
    bl_p: Vec<BlockLane>,
    blpos_p: Vec<u32>,
    /// Lane id -> block-lane id, per domain (build-time scratch).
    bl_of_l: Vec<u32>,
    bl_of_p: Vec<u32>,
    /// Lane ids sorted by (stride, base) (build-time scratch).
    lane_order: Vec<u32>,
    /// Per-position scatter scratch.
    scatter: Vec<u32>,
    /// Line groups, lane-major (all of lane 0, then lane 1, …).
    lg: Vec<WinGroup>,
    /// Page groups, lane-major.
    pg: Vec<WinGroup>,
    /// Per-lane `[start, end)` range into `lg`.
    lg_range: Vec<(u32, u32)>,
    /// Per-lane `[start, end)` range into `pg`.
    pg_range: Vec<(u32, u32)>,
    /// Per-lane flush cursor (absolute index into `lg`).
    lg_cur: Vec<u32>,
    /// Per-lane flush cursor (absolute index into `pg`).
    pg_cur: Vec<u32>,
    /// Line groups in expiry order: `(g_last, group index, block-lane)`
    /// sorted ascending — the amortized advance pops fully-covered
    /// groups from here instead of scanning every block-lane's cursor
    /// at every event.
    exp_l: Vec<(i64, u32, u32)>,
    /// Page groups in expiry order.
    exp_p: Vec<(i64, u32, u32)>,
    /// Raw line-domain events (build-time scratch).
    events_l: Vec<WinEvent>,
    /// Raw page-domain events (build-time scratch).
    events_p: Vec<WinEvent>,
    /// Surviving walk events, sorted by global position.
    events: Vec<WinEvent>,
    /// Per-lane count of walked (event) accesses.
    walked: Vec<u32>,
    /// Line groups indexed by block: `(block, group index, lane)`,
    /// sorted, for O(log G) patch and eviction-demote lookups.
    lg_idx: Vec<(u64, u32, u32)>,
    /// Page groups indexed by block.
    pg_idx: Vec<(u64, u32, u32)>,
}

/// Enumerates the same-block groups of the lane `base + t * stride`
/// over `[t0, te)`, probing each block's residency, and records a walk
/// event at the head of every non-resident group.
#[allow(clippy::too_many_arguments)]
fn enum_groups(
    base: i64,
    stride: i64,
    bits: u32,
    t0: i64,
    te: i64,
    probe: impl Fn(u64) -> Option<u32>,
    out: &mut Vec<WinGroup>,
    events: &mut Vec<WinEvent>,
    lane: u32,
    first_pos: u32,
) {
    let mut t = t0;
    while t < te {
        let addr = stream_addr(base, stride, t).expect("prechecked window");
        let block = (addr >> bits) as u64;
        let t_last = block_run_end(addr, stride, bits, t, te) - 1;
        let slot = match probe(block) {
            Some(s) => s,
            None => {
                events.push(WinEvent {
                    t,
                    pos: first_pos,
                    lane,
                    block,
                });
                WIN_MISS
            }
        };
        out.push(WinGroup {
            t_first: t,
            t_last,
            block,
            slot,
        });
        t = t_last + 1;
    }
}

/// Latest covered touch (global position) of `grp` by any of its
/// block-lane's `copies` strictly below `g_limit`, or -1 when none —
/// the value the group's slot stamp must reflect once accesses up to
/// `g_limit` have run. Monotone in `g_limit`, so stamps derived from it
/// can be written lazily at any later point and max-merged.
#[inline]
fn group_last_touch(grp: &WinGroup, copies: &[u32], t0: i64, k: i64, g_limit: i64) -> i64 {
    let mut best = -1i64;
    for &p in copies {
        let p = p as i64;
        if g_limit > p {
            let u_rel = ((g_limit - 1 - p) / k).min(grp.t_last - t0);
            if t0 + u_rel >= grp.t_first {
                best = best.max(u_rel * k + p);
            }
        }
    }
    best
}

/// The amortized half of stamp flushing: pops groups from the expiry
/// list while they lie fully behind `g_limit`, stamping each consumed
/// group with its last toucher and advancing its block-lane's cursor.
/// Each group is consumed exactly once per window, so the cost is
/// O(groups) total no matter how many events call this. Groups marked
/// [`WIN_MISS`] are skipped — their block's first-touch event has not
/// run yet (no covered access touched them), or they were demoted, in
/// which case their slot's stamp is the fill stamp of the access that
/// evicted them, which this flush must not regress (and max-merge
/// cannot).
fn advance_exp(
    exp: &[(i64, u32, u32)],
    exp_cur: &mut usize,
    list: &[WinGroup],
    cur: &mut [u32],
    stamps: &mut [u64],
    clock0: u64,
    g_limit: i64,
) {
    while let Some(&(g_last, gi, bli)) = exp.get(*exp_cur) {
        if g_last >= g_limit {
            break;
        }
        let grp = &list[gi as usize];
        if grp.slot != WIN_MISS {
            let st = &mut stamps[grp.slot as usize];
            let v = clock0 + g_last as u64 + 1;
            if *st < v {
                *st = v;
            }
        }
        cur[bli as usize] = gi + 1;
        *exp_cur += 1;
    }
}

/// The boundary half of stamp flushing: writes the partial (latest
/// covered touch) stamp of each block-lane's cursor group, for slots
/// selected by `want` — victim selection at an event only reads the
/// stamps of one L1 set (or the TLB on a TLB miss), so stamping the
/// rest of the boundary groups can wait for a later, larger `g_limit`;
/// the partial value is monotone in `g_limit` and max-merged, so
/// deferral never changes what a slot ends up holding when it *is*
/// read. Callers must [`advance_exp`] to the same `g_limit` first.
#[allow(clippy::too_many_arguments)]
fn partial_stamp(
    list: &[WinGroup],
    cur: &[u32],
    ranges: &[(u32, u32)],
    bls: &[BlockLane],
    blpos: &[u32],
    stamps: &mut [u64],
    clock0: u64,
    t0: i64,
    k: i64,
    g_limit: i64,
    want: impl Fn(u32) -> bool,
) {
    for (li, bl) in bls.iter().enumerate() {
        let c = cur[li];
        if c >= ranges[li].1 {
            continue;
        }
        let grp = &list[c as usize];
        if grp.slot == WIN_MISS || !want(grp.slot) {
            continue;
        }
        let copies = &blpos[bl.pos_lo as usize..bl.pos_hi as usize];
        let best = group_last_touch(grp, copies, t0, k, g_limit);
        if best >= 0 {
            let st = &mut stamps[grp.slot as usize];
            let v = clock0 + best as u64 + 1;
            if *st < v {
                *st = v;
            }
        }
    }
}

/// Handles an event evicting `block` out from under the window: every
/// group still assuming the block resident is demoted to [`WIN_MISS`]
/// (from here on the block genuinely is absent — the demoted groups all
/// held the victim slot, whose stamp the evicting fill overwrites, so
/// their not-yet-flushed covered touches can no longer matter; flushes
/// skip [`WIN_MISS`] groups thereafter). Returns the `(t, pos)` of the
/// earliest remaining touch of the block, strictly after `g_e` — the
/// caller synthesizes a walk event there, which refills the block and
/// patches the demoted groups' slots so the touches after it bulk as
/// hits again.
#[allow(clippy::too_many_arguments)]
fn demote_block(
    list: &mut [WinGroup],
    idx: &[(u64, u32, u32)],
    cur: &[u32],
    bls: &[BlockLane],
    blpos: &[u32],
    block: u64,
    t0: i64,
    k: i64,
    g_e: i64,
) -> Option<(i64, u32)> {
    let lo = idx.partition_point(|&(b, _, _)| b < block);
    let mut best: Option<(i64, i64, u32)> = None;
    for &(b, gi, li) in &idx[lo..] {
        if b != block {
            break;
        }
        if gi < cur[li as usize] {
            continue;
        }
        let grp = &mut list[gi as usize];
        if grp.slot == WIN_MISS {
            continue;
        }
        grp.slot = WIN_MISS;
        let bl = &bls[li as usize];
        let copies = &blpos[bl.pos_lo as usize..bl.pos_hi as usize];
        for &p in copies {
            let p64 = p as i64;
            // Smallest t in the group with (t - t0) * k + p > g_e.
            let u_min = if g_e < p64 { 0 } else { (g_e - p64) / k + 1 };
            let t = (t0 + u_min).max(grp.t_first);
            if t <= grp.t_last {
                let g = (t - t0) * k + p64;
                if best.is_none_or(|(bg, ..)| g < bg) {
                    best = Some((g, t, p));
                }
            }
        }
    }
    best.map(|(_, t, p)| (t, p))
}

/// Merges lanes (pre-sorted by `(stride, base)` in `order`) into
/// per-domain block-lanes (see [`BlockLane`]) and records each lane's
/// block-lane id.
fn build_block_lanes(
    lanes: &[Lane],
    order: &[u32],
    bits: u32,
    out: &mut Vec<BlockLane>,
    bl_of: &mut Vec<u32>,
) {
    let bsize = 1i64 << bits;
    out.clear();
    bl_of.clear();
    bl_of.resize(lanes.len(), 0);
    for &li in order {
        let l = &lanes[li as usize];
        let merged = out.last().is_some_and(|bl: &BlockLane| {
            if bl.stride != l.stride {
                return false;
            }
            let g = if l.stride == 0 {
                bsize
            } else {
                1i64 << l.stride.unsigned_abs().trailing_zeros().min(bits)
            };
            let d = l.base - bl.base;
            d >= 0 && d + bl.base.rem_euclid(g) < g
        });
        if !merged {
            out.push(BlockLane {
                base: l.base,
                stride: l.stride,
                pos_lo: 0,
                pos_hi: 0,
            });
        }
        bl_of[li as usize] = (out.len() - 1) as u32;
    }
}

/// Groups the active positions by group id (`of(p)`), ascending within
/// each group, via a counting scatter; fills each group's
/// `[pos_lo, pos_hi)` range.
fn scatter_positions(
    k: usize,
    of: impl Fn(usize) -> usize,
    groups: &mut [BlockLane],
    out: &mut Vec<u32>,
    counts: &mut Vec<u32>,
) {
    out.clear();
    out.resize(k, 0);
    counts.clear();
    counts.resize(groups.len(), 0);
    for p in 0..k {
        counts[of(p)] += 1;
    }
    let mut at = 0u32;
    for (gi, bl) in groups.iter_mut().enumerate() {
        bl.pos_lo = at;
        at += counts[gi];
        bl.pos_hi = at;
        counts[gi] = bl.pos_lo;
    }
    for p in 0..k {
        let c = &mut counts[of(p)];
        out[*c as usize] = p as u32;
        *c += 1;
    }
}

/// One set-associative cache level with LRU replacement.
#[derive(Debug, Clone)]
struct Cache {
    line_bits: u32,
    set_mask: u64,
    ways: usize,
    /// `tags[set * ways + way]`; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags`.
    stamps: Vec<u64>,
    clock: u64,
    miss_penalty_x1000: u64,
}

impl Cache {
    fn new(desc: &CacheDesc) -> Self {
        let geom = desc.geometry();
        Cache {
            line_bits: geom.line_bits,
            set_mask: geom.set_mask,
            ways: geom.ways,
            tags: vec![INVALID; geom.lines],
            stamps: vec![0; geom.lines],
            clock: 0,
            miss_penalty_x1000: desc.miss_penalty_cycles * 1000,
        }
    }

    /// Pure residency probe: the slot holding `line`, if any. No clock
    /// tick, no restamp — safe to call speculatively.
    #[inline]
    fn probe(&self, line: u64) -> Option<u32> {
        let base = (line & self.set_mask) as usize * self.ways;
        (base..base + self.ways)
            .find(|&i| self.tags[i] == line)
            .map(|i| i as u32)
    }

    /// Looks up `addr`, filling on miss. Returns whether it hit and the
    /// slot (index into `tags`) where the line now resides.
    #[inline]
    fn access(&mut self, addr: u64) -> (bool, u32) {
        let line = addr >> self.line_bits;
        let set = (line & self.set_mask) as usize;
        let base = set * self.ways;
        self.clock += 1;
        let mut victim = base;
        let mut oldest = u64::MAX;
        for i in base..base + self.ways {
            if self.tags[i] == line {
                self.stamps[i] = self.clock;
                return (true, i as u32);
            }
            if self.stamps[i] < oldest {
                oldest = self.stamps[i];
                victim = i;
            }
        }
        self.tags[victim] = line;
        self.stamps[victim] = self.clock;
        (false, victim as u32)
    }
}

/// Fully-associative LRU TLB.
#[derive(Debug, Clone)]
struct Tlb {
    page_bits: u32,
    pages: Vec<u64>,
    stamps: Vec<u64>,
    clock: u64,
    miss_penalty_x1000: u64,
    /// Entry touched by the most recent access — a most-recently-used
    /// shortcut that skips the full associative scan when consecutive
    /// accesses stay on one page (the overwhelmingly common case for
    /// strided loops). Behaviour is identical to the full scan: a hit
    /// bumps the clock and restamps the entry either way.
    mru: usize,
    /// Direct-mapped page → entry hints, indexed by the page's low bits.
    /// A hint is only *trusted* after verifying `pages[slot]` still holds
    /// the page, so stale or colliding entries merely fall back to the
    /// full scan — the shortcut can never change simulated behaviour.
    /// This is what keeps inner loops that interleave accesses to many
    /// arrays (hence many pages, defeating the MRU shortcut) from paying
    /// a full associative scan per access.
    hint: Vec<(u64, u32)>,
}

/// log2 of the TLB hint-table size.
const TLB_HINT_BITS: u32 = 10;

impl Tlb {
    fn new(desc: &TlbDesc) -> Self {
        assert!(
            desc.page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        Tlb {
            page_bits: desc.page_bytes.trailing_zeros(),
            pages: vec![INVALID; desc.entries],
            stamps: vec![0; desc.entries],
            clock: 0,
            miss_penalty_x1000: desc.miss_penalty_cycles * 1000,
            mru: 0,
            hint: vec![(INVALID, 0); 1 << TLB_HINT_BITS],
        }
    }

    /// Pure residency probe: the entry holding `page`, if any. Tries
    /// the MRU and hint accelerators first (verified before trusted,
    /// exactly like [`Tlb::access`]), falling back to the full scan.
    /// No clock tick, no restamp, no accelerator update.
    #[inline]
    fn probe(&self, page: u64) -> Option<u32> {
        if self.pages[self.mru] == page {
            return Some(self.mru as u32);
        }
        let (hint_page, hint_slot) = self.hint[(page as usize) & ((1usize << TLB_HINT_BITS) - 1)];
        if hint_page == page && self.pages[hint_slot as usize] == page {
            return Some(hint_slot);
        }
        self.pages.iter().position(|&p| p == page).map(|i| i as u32)
    }

    #[inline]
    fn access(&mut self, addr: u64) -> (bool, u32) {
        let page = addr >> self.page_bits;
        self.clock += 1;
        if self.pages[self.mru] == page {
            self.stamps[self.mru] = self.clock;
            return (true, self.mru as u32);
        }
        let h = (page as usize) & ((1usize << TLB_HINT_BITS) - 1);
        let (hint_page, hint_slot) = self.hint[h];
        if hint_page == page && self.pages[hint_slot as usize] == page {
            self.stamps[hint_slot as usize] = self.clock;
            self.mru = hint_slot as usize;
            return (true, hint_slot);
        }
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for i in 0..self.pages.len() {
            if self.pages[i] == page {
                self.stamps[i] = self.clock;
                self.mru = i;
                self.hint[h] = (page, i as u32);
                return (true, i as u32);
            }
            if self.stamps[i] < oldest {
                oldest = self.stamps[i];
                victim = i;
            }
        }
        self.pages[victim] = page;
        self.stamps[victim] = self.clock;
        self.mru = victim;
        self.hint[h] = (page, victim as u32);
        (false, victim as u32)
    }
}

/// The full simulated memory hierarchy for one machine.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    caches: Vec<Cache>,
    tlb: Tlb,
    counters: Counters,
    mem_issue_x1000: u64,
    prefetch_issue_x1000: u64,
    flop_x1000: u64,
    loop_overhead_x1000: u64,
    bandwidth_per_line_x1000: u64,
    /// L1 line of the most recent access (`u64::MAX` = none yet). Any
    /// access leaves its line resident in L1 (hit or fill) and its page
    /// in the TLB, so a follow-up access to the same line is *provably*
    /// an L1 + TLB hit whose only architectural effect is bumping the
    /// two LRU clocks and restamping the touched slots — which is what
    /// the same-line fast path does, without any lookup.
    last_line: u64,
    /// Slot in `caches[0]` holding `last_line`.
    last_l1_slot: u32,
    /// TLB entry holding `last_line`'s page.
    last_tlb_slot: u32,
    /// Fast path requires at least one cache level and pages no smaller
    /// than L1 lines (so same line implies same page).
    fast_ok: bool,
    /// Fast-forward telemetry (not part of [`Counters`]).
    stats: SimStats,
    /// Consecutive event-dense fast-forward windows seen (see
    /// [`FF_STRIKES`]); persists across segments because hostile phases
    /// often run one window per segment.
    ff_strikes: u32,
    /// Remaining segments to walk outright before retrying fast-forward
    /// (see [`FF_COOLDOWN`]).
    ff_cooldown: u32,
    /// Reused segment-boundary scratch for [`MemoryHierarchy::access_streams`].
    scratch_cuts: Vec<i64>,
    /// Reused active-stream scratch for [`MemoryHierarchy::access_streams`].
    scratch_active: Vec<u32>,
    /// Reused window scratch for [`MemoryHierarchy::ff_window`].
    win: WindowScratch,
}

impl MemoryHierarchy {
    /// A cold hierarchy for the given machine.
    pub fn new(machine: &MachineDesc) -> Self {
        let caches: Vec<Cache> = machine.caches.iter().map(Cache::new).collect();
        assert!(
            caches.len() <= MAX_LEVELS,
            "at most {MAX_LEVELS} cache levels supported"
        );
        let fast_ok = caches
            .first()
            .map(|l1| machine.tlb.page_bytes.trailing_zeros() >= l1.line_bits)
            .unwrap_or(false);
        MemoryHierarchy {
            tlb: Tlb::new(&machine.tlb),
            counters: Counters {
                cache_misses: vec![0; caches.len()],
                prefetch_fills: vec![0; caches.len()],
                ..Default::default()
            },
            caches,
            mem_issue_x1000: machine.cost.mem_issue_cycles_x1000,
            prefetch_issue_x1000: machine.cost.prefetch_issue_cycles_x1000,
            flop_x1000: machine.cost.flop_cycles_x1000,
            loop_overhead_x1000: machine.cost.loop_overhead_cycles_x1000,
            bandwidth_per_line_x1000: machine.cost.memory_bandwidth_cycles_per_line_x1000,
            last_line: INVALID,
            last_l1_slot: 0,
            last_tlb_slot: 0,
            fast_ok,
            stats: SimStats::default(),
            ff_strikes: 0,
            ff_cooldown: 0,
            scratch_cuts: Vec::new(),
            scratch_active: Vec::new(),
            win: WindowScratch::default(),
        }
    }

    /// Counts the issue cost of one access of `kind`.
    #[inline]
    fn count_issue(&mut self, kind: AccessKind) {
        match kind {
            AccessKind::Load => {
                self.counters.loads += 1;
                self.counters.cycles_x1000 += self.mem_issue_x1000;
            }
            AccessKind::Store => {
                self.counters.stores += 1;
                self.counters.cycles_x1000 += self.mem_issue_x1000;
            }
            AccessKind::Prefetch => {
                self.counters.prefetches += 1;
                self.counters.cycles_x1000 += self.prefetch_issue_x1000;
            }
        }
    }

    /// The same-line fast path: if `addr` falls on the line touched by
    /// the immediately preceding access, apply the (statically known)
    /// L1-hit/TLB-hit effects and return `true`. Exactly equivalent to
    /// the full lookup for that case.
    #[inline]
    fn try_same_line(&mut self, addr: u64, kind: AccessKind) -> bool {
        if !self.fast_ok {
            return false;
        }
        let l1 = &mut self.caches[0];
        if (addr >> l1.line_bits) != self.last_line {
            return false;
        }
        l1.clock += 1;
        l1.stamps[self.last_l1_slot as usize] = l1.clock;
        self.tlb.clock += 1;
        self.tlb.stamps[self.last_tlb_slot as usize] = self.tlb.clock;
        self.count_issue(kind);
        true
    }

    /// Simulates one access to byte address `addr`, attributing misses
    /// to `tag` (e.g. the array id). Tags grow the per-tag table on
    /// demand; use [`MemoryHierarchy::access`] when attribution is not
    /// needed.
    pub fn access_tagged(&mut self, addr: u64, kind: AccessKind, tag: usize) {
        let levels = self.caches.len();
        if self.counters.per_tag.len() <= tag {
            self.counters.per_tag.resize_with(tag + 1, || TagCounters {
                accesses: 0,
                misses: vec![0; levels],
                tlb_misses: 0,
            });
        }
        if self.try_same_line(addr, kind) {
            // a same-line hit misses nowhere: only the access count moves
            if !matches!(kind, AccessKind::Prefetch) {
                self.counters.per_tag[tag].accesses += 1;
            }
            return;
        }
        let mut before = [0u64; MAX_LEVELS];
        before[..levels].copy_from_slice(&self.counters.cache_misses);
        let tlb_before = self.counters.tlb_misses;
        self.access_full(addr, kind);
        let t = &mut self.counters.per_tag[tag];
        if !matches!(kind, AccessKind::Prefetch) {
            t.accesses += 1;
        }
        for (i, b) in before[..levels].iter().enumerate() {
            t.misses[i] += self.counters.cache_misses[i] - b;
        }
        t.tlb_misses += self.counters.tlb_misses - tlb_before;
    }

    /// Simulates one access to byte address `addr`.
    #[inline]
    pub fn access(&mut self, addr: u64, kind: AccessKind) {
        if self.try_same_line(addr, kind) {
            return;
        }
        self.access_full(addr, kind);
    }

    /// The full (scan-every-level) access path.
    fn access_full(&mut self, addr: u64, kind: AccessKind) {
        let is_prefetch = matches!(kind, AccessKind::Prefetch);
        self.count_issue(kind);
        let (tlb_hit, tlb_slot) = self.tlb.access(addr);
        if !tlb_hit {
            self.counters.tlb_misses += 1;
            self.counters.cycles_x1000 += self.tlb.miss_penalty_x1000;
        }
        let mut l1_slot = 0;
        let mut filled_from_memory = true;
        for (i, cache) in self.caches.iter_mut().enumerate() {
            let (hit, slot) = cache.access(addr);
            if i == 0 {
                l1_slot = slot;
            }
            if !hit {
                if is_prefetch {
                    self.counters.prefetch_fills[i] += 1;
                } else {
                    self.counters.cache_misses[i] += 1;
                    self.counters.cycles_x1000 += cache.miss_penalty_x1000;
                }
            }
            if hit {
                filled_from_memory = false;
                break;
            }
        }
        if filled_from_memory {
            // The line came from main memory: bus occupancy is paid whether
            // or not the latency was hidden.
            self.counters.cycles_x1000 += self.bandwidth_per_line_x1000;
        }
        if self.fast_ok {
            self.last_line = addr >> self.caches[0].line_bits;
            self.last_l1_slot = l1_slot;
            self.last_tlb_slot = tlb_slot;
        }
    }

    /// Counts the issue cost of `k` accesses of `kind` (counters and
    /// cycles only — no clock or stamp movement).
    #[inline]
    fn bulk_issue(&mut self, k: u64, kind: AccessKind) {
        match kind {
            AccessKind::Load => {
                self.counters.loads += k;
                self.counters.cycles_x1000 += k * self.mem_issue_x1000;
            }
            AccessKind::Store => {
                self.counters.stores += k;
                self.counters.cycles_x1000 += k * self.mem_issue_x1000;
            }
            AccessKind::Prefetch => {
                self.counters.prefetches += k;
                self.counters.cycles_x1000 += k * self.prefetch_issue_x1000;
            }
        }
    }

    /// Services a whole batch of strided access streams in one pass —
    /// exactly equivalent to the interleaved per-access loop
    ///
    /// ```ignore
    /// for t in 0..trips {
    ///     for s in streams {
    ///         if s.vlo <= t && t <= s.vhi {
    ///             h.access(s.base + t * s.stride, s.kind)
    ///         }
    ///     }
    /// }
    /// ```
    ///
    /// (or `access_tagged` with each stream's tag when `attribute` is
    /// set), but batched. The trip range is first cut at the streams'
    /// validity boundaries so each segment has a constant active set;
    /// within a segment the simulator repeatedly tries to *fast-forward*
    /// a window of iterations: it probes (purely — no state change)
    /// every cache line and TLB page the window touches, and when all
    /// are resident, every access in the window is an L1 + TLB hit, so
    /// no line is filled, nothing is evicted, and residency holds for
    /// the whole window by induction. The window's effect on the
    /// architectural state is then applied arithmetically: bulk issue
    /// costs, bulk L1/TLB clock advances, and per-slot LRU stamps
    /// computed from each line's last toucher — bit-identical to the
    /// walked result. Windows where probing finds a non-resident line
    /// are walked access-by-access up to the miss, with exponential
    /// backoff on re-probing so streaming (never-resident) phases pay a
    /// bounded probe overhead.
    ///
    /// The caller must guarantee every in-window address is mapped;
    /// strides may be zero or negative.
    pub fn access_streams(&mut self, streams: &[StreamSpec], trips: i64, attribute: bool) {
        if trips <= 0 || streams.is_empty() {
            return;
        }
        if attribute {
            let levels = self.caches.len();
            let max_tag = streams.iter().map(|s| s.tag as usize).max().unwrap_or(0);
            if self.counters.per_tag.len() <= max_tag {
                self.counters
                    .per_tag
                    .resize_with(max_tag + 1, || TagCounters {
                        accesses: 0,
                        misses: vec![0; levels],
                        tlb_misses: 0,
                    });
            }
            if self.stats.per_tag_ff.len() <= max_tag {
                self.stats.per_tag_ff.resize(max_tag + 1, 0);
            }
        }
        let mut cuts = std::mem::take(&mut self.scratch_cuts);
        let mut active = std::mem::take(&mut self.scratch_active);
        cuts.clear();
        cuts.push(0);
        cuts.push(trips);
        for s in streams {
            if s.vlo > 0 && s.vlo < trips {
                cuts.push(s.vlo);
            }
            if s.vhi >= 0 && s.vhi + 1 < trips {
                cuts.push(s.vhi + 1);
            }
        }
        cuts.sort_unstable();
        cuts.dedup();
        for w in 0..cuts.len() - 1 {
            let (t0, t1) = (cuts[w], cuts[w + 1]);
            active.clear();
            active.extend(
                streams
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.vlo <= t0 && t0 <= s.vhi)
                    .map(|(i, _)| i as u32),
            );
            if !active.is_empty() {
                self.run_segment(streams, &active, t0, t1, attribute);
            }
        }
        self.scratch_cuts = cuts;
        self.scratch_active = active;
    }

    /// One segment of [`MemoryHierarchy::access_streams`]: a trip range
    /// `[t0, t1)` over which the active stream set is constant.
    fn run_segment(
        &mut self,
        streams: &[StreamSpec],
        active: &[u32],
        t0: i64,
        t1: i64,
        attribute: bool,
    ) {
        // ECO_NO_FF forces the plain walker; results are identical
        // either way (fast-forward is exact), so this is purely a
        // debugging / benchmarking escape hatch.
        static NO_FF: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        let no_ff = *NO_FF.get_or_init(|| std::env::var_os("ECO_NO_FF").is_some());
        let mut ff_on = self.fast_ok && !no_ff;
        if ff_on && self.ff_cooldown > 0 {
            self.ff_cooldown -= 1;
            ff_on = false;
        }
        if !ff_on {
            // Straight walk: no window scratch, no horizon bookkeeping.
            for u in t0..t1 {
                for &si in active {
                    let s = &streams[si as usize];
                    let addr = (s.base as u64).wrapping_add_signed(s.stride.wrapping_mul(u));
                    if attribute {
                        self.access_tagged(addr, s.kind, s.tag as usize);
                    } else {
                        self.access(addr, s.kind);
                    }
                }
            }
            return;
        }
        let mut win = std::mem::take(&mut self.win);
        let mut h_cap = FF_HORIZON_MAX;
        if ff_on {
            // Deduplicate the active streams into lanes: unrolled loop
            // bodies repeat the same (base, stride) many times, and all
            // copies touch the same blocks on the same iteration.
            win.lanes.clear();
            win.lane_of.clear();
            for &si in active {
                let s = &streams[si as usize];
                let li = win
                    .lanes
                    .iter()
                    .position(|l| {
                        l.base == s.base
                            && l.stride == s.stride
                            && l.kind == s.kind
                            && l.tag == s.tag
                    })
                    .unwrap_or_else(|| {
                        win.lanes.push(Lane {
                            base: s.base,
                            stride: s.stride,
                            kind: s.kind,
                            tag: s.tag,
                            pos_lo: 0,
                            pos_hi: 0,
                        });
                        win.lanes.len() - 1
                    });
                win.lane_of.push(li as u32);
            }
            // Group the active positions by lane (counting scatter keeps
            // them ascending within a lane) and record each lane's range.
            let k = active.len();
            win.lane_pos.clear();
            win.lane_pos.resize(k, 0);
            win.scatter.clear();
            win.scatter.resize(win.lanes.len(), 0);
            for &li in &win.lane_of {
                win.scatter[li as usize] += 1;
            }
            let mut at = 0u32;
            for (li, lane) in win.lanes.iter_mut().enumerate() {
                lane.pos_lo = at;
                at += win.scatter[li];
                lane.pos_hi = at;
                win.scatter[li] = lane.pos_lo;
            }
            for (p, &li) in win.lane_of.iter().enumerate() {
                let c = &mut win.scatter[li as usize];
                win.lane_pos[*c as usize] = p as u32;
                *c += 1;
            }
            // Merge lanes into per-domain block-lanes: lanes proven to
            // land in the same line (or page) every iteration are probed
            // and stamped once per domain.
            win.lane_order.clear();
            win.lane_order.extend(0..win.lanes.len() as u32);
            {
                let lanes = &win.lanes;
                win.lane_order.sort_unstable_by_key(|&li| {
                    let l = &lanes[li as usize];
                    (l.stride, l.base)
                });
            }
            build_block_lanes(
                &win.lanes,
                &win.lane_order,
                self.caches[0].line_bits,
                &mut win.bl_l,
                &mut win.bl_of_l,
            );
            build_block_lanes(
                &win.lanes,
                &win.lane_order,
                self.tlb.page_bits,
                &mut win.bl_p,
                &mut win.bl_of_p,
            );
            {
                let lane_of = &win.lane_of;
                let bl_of_l = &win.bl_of_l;
                scatter_positions(
                    k,
                    |p| bl_of_l[lane_of[p] as usize] as usize,
                    &mut win.bl_l,
                    &mut win.blpos_l,
                    &mut win.scatter,
                );
                let bl_of_p = &win.bl_of_p;
                scatter_positions(
                    k,
                    |p| bl_of_p[lane_of[p] as usize] as usize,
                    &mut win.bl_p,
                    &mut win.blpos_p,
                    &mut win.scatter,
                );
            }
            // Window cap: keep the total number of probed line groups
            // per window bounded, so one failed probe round costs
            // O(FF_GROUP_BUDGET). A block-lane of stride `s` starts
            // about `min(|s|, line) / line` new line groups per
            // iteration; sum that density (in 1/1024ths) over them.
            let line = 1i64 << self.caches[0].line_bits;
            let mut density = 0i64;
            for bl in &win.bl_l {
                let st = bl.stride.unsigned_abs() as i64;
                density += st.min(line) * 1024 / line;
            }
            if density > 0 {
                h_cap = (FF_GROUP_BUDGET * 1024 / density).max(4);
            }
        }
        let mut horizon: i64 = 16;
        let mut walk_len: i64 = 1;
        let mut t = t0;
        while t < t1 {
            if ff_on {
                let h = horizon.min(h_cap).min(t1 - t);
                let (t_ff, nev, ngrp) = self.ff_window(streams, active, &mut win, t, h, attribute);
                // A window dominated by events — or one whose group
                // enumeration is large relative to the accesses it
                // covers — costs more to orchestrate than the walk it
                // replaces. A few of those in a row (counted across
                // segments — hostile phases often run one window per
                // segment) and fast-forward is suspended for
                // FF_COOLDOWN segments.
                let covered = (t_ff - t) * active.len() as i64;
                if covered == 0 || (nev as i64) * 16 >= covered || (ngrp as i64) * 6 > covered {
                    self.ff_strikes += 1;
                    if self.ff_strikes >= FF_STRIKES {
                        self.ff_strikes = 0;
                        self.ff_cooldown = FF_COOLDOWN;
                        ff_on = false;
                    }
                } else {
                    self.ff_strikes = 0;
                }
                if t_ff == t + h {
                    t = t_ff;
                    if ff_on {
                        horizon = (horizon * 2).min(FF_HORIZON_MAX);
                        walk_len = 1;
                        continue;
                    }
                } else if t_ff > t {
                    t = t_ff;
                    walk_len = 1;
                } else {
                    walk_len = (walk_len * 2).min(FF_WALK_MAX);
                }
                horizon = (horizon / 2).max(16);
                if t >= t1 {
                    break;
                }
            }
            let wend = if ff_on { (t + walk_len).min(t1) } else { t1 };
            for u in t..wend {
                for &si in active {
                    let s = &streams[si as usize];
                    let addr = (s.base as u64).wrapping_add_signed(s.stride.wrapping_mul(u));
                    if attribute {
                        self.access_tagged(addr, s.kind, s.tag as usize);
                    } else {
                        self.access(addr, s.kind);
                    }
                }
            }
            t = wend;
        }
        self.win = win;
    }

    /// Attempts to fast-forward the window `[t0, t0 + h)` of the active
    /// streams and returns the iteration reached (`t0` when nothing
    /// could be fast-forwarded and the caller should walk) plus the
    /// number of walk events the attempt accumulated — the caller's
    /// event-density measure for striking out of fast-forward.
    ///
    /// The window is *sparse-event*: every touched L1 line and TLB page
    /// is probed purely, splitting the window's accesses into bulked
    /// hits (line and page both resident — their only architectural
    /// effect is an issue count, a clock tick on L1 + TLB, and an LRU
    /// restamp of the touched slots) and walk *events* (line or page
    /// probed absent — victim choice, fills, and penalties depend on
    /// live state). Events are replayed exactly, in global order, with
    /// the L1/TLB clocks set to their walk-time values and all earlier
    /// covered restamps flushed first so LRU victim selection sees the
    /// stamps a real walk would have. Bulked effects are applied
    /// arithmetically (the per-slot stamp of a group's last toucher,
    /// max-merged so shared lines resolve to the true last toucher).
    ///
    /// Residency probed at window start stays valid until something is
    /// evicted, and only events evict: after each event the (exactly
    /// replicated) victim is checked against every probed window block,
    /// and on collision the window is truncated at that event — the
    /// rest of its iteration is walked and the remainder of the window
    /// is re-probed by the caller. By induction the bulked accesses are
    /// bit-identical to a walk.
    fn ff_window(
        &mut self,
        streams: &[StreamSpec],
        active: &[u32],
        win: &mut WindowScratch,
        t0: i64,
        h: i64,
        attribute: bool,
    ) -> (i64, u32, u32) {
        let te = t0 + h;
        let k = active.len();
        let kk = k as i64;
        // Representability precheck: addresses are linear in t, so both
        // endpoints being mapped covers the whole window. A failure
        // falls back to the walker, which reproduces the reference
        // wrapping arithmetic exactly.
        for lane in &win.lanes {
            if stream_addr(lane.base, lane.stride, t0).is_none()
                || stream_addr(lane.base, lane.stride, te - 1).is_none()
            {
                return (t0, 0, 0);
            }
        }
        win.lg.clear();
        win.pg.clear();
        win.lg_range.clear();
        win.pg_range.clear();
        win.events_l.clear();
        win.events_p.clear();
        let lb = self.caches[0].line_bits;
        let pb = self.tlb.page_bits;
        for bl in &win.bl_l {
            // The block's first toucher on any iteration is the block-
            // lane's first active position; the walk access there is
            // that position's issue lane.
            let first_pos = win.blpos_l[bl.pos_lo as usize];
            let lane = win.lane_of[first_pos as usize];
            let l_start = win.lg.len() as u32;
            let l1 = &self.caches[0];
            enum_groups(
                bl.base,
                bl.stride,
                lb,
                t0,
                te,
                |b| l1.probe(b),
                &mut win.lg,
                &mut win.events_l,
                lane,
                first_pos,
            );
            win.lg_range.push((l_start, win.lg.len() as u32));
        }
        for bl in &win.bl_p {
            let first_pos = win.blpos_p[bl.pos_lo as usize];
            let lane = win.lane_of[first_pos as usize];
            let p_start = win.pg.len() as u32;
            let tlb = &self.tlb;
            enum_groups(
                bl.base,
                bl.stride,
                pb,
                t0,
                te,
                |b| tlb.probe(b),
                &mut win.pg,
                &mut win.events_p,
                lane,
                first_pos,
            );
            win.pg_range.push((p_start, win.pg.len() as u32));
        }
        // Keep only the *first* touch of each probed-absent block as a
        // walk event: it fills the block, so every later touch — same
        // lane or not — is a plain hit, bulked like any other (its slot
        // is patched in when the first touch walks). Then merge the two
        // domains: one access can raise both a line and a page event.
        for evs in [&mut win.events_l, &mut win.events_p] {
            evs.sort_unstable_by_key(|e| (e.block, e.t, e.pos));
            evs.dedup_by_key(|e| e.block);
        }
        win.events.clear();
        win.events.extend_from_slice(&win.events_l);
        win.events.extend_from_slice(&win.events_p);
        win.events.sort_unstable_by_key(|e| (e.t, e.pos));
        win.events.dedup_by_key(|e| (e.t, e.pos));
        // A window this dense in real misses is cheaper to walk outright
        // than to orchestrate (no state touched yet — bail is free).
        if (win.events.len() as i64) * 2 >= kk * h {
            return (t0, win.events.len() as u32, 0);
        }
        let nlanes = win.lanes.len();
        // Sorted by-block indexes: patching fill slots and demoting
        // evicted blocks both look groups up by block, and a linear scan
        // per event is quadratic in window size.
        win.lg_idx.clear();
        for (li, &(lo, hi)) in win.lg_range.iter().enumerate() {
            for gi in lo..hi {
                win.lg_idx.push((win.lg[gi as usize].block, gi, li as u32));
            }
        }
        win.lg_idx.sort_unstable();
        win.pg_idx.clear();
        for (li, &(lo, hi)) in win.pg_range.iter().enumerate() {
            for gi in lo..hi {
                win.pg_idx.push((win.pg[gi as usize].block, gi, li as u32));
            }
        }
        win.pg_idx.sort_unstable();
        // Expiry-ordered group lists drive the amortized stamp flush:
        // a group's expiry is the global position of its last toucher
        // (its block-lane's last copy on its last iteration).
        win.exp_l.clear();
        for (bli, &(lo, hi)) in win.lg_range.iter().enumerate() {
            let bl = &win.bl_l[bli];
            let p_last = win.blpos_l[bl.pos_hi as usize - 1] as i64;
            for gi in lo..hi {
                win.exp_l.push((
                    (win.lg[gi as usize].t_last - t0) * kk + p_last,
                    gi,
                    bli as u32,
                ));
            }
        }
        win.exp_l.sort_unstable();
        win.exp_p.clear();
        for (bli, &(lo, hi)) in win.pg_range.iter().enumerate() {
            let bl = &win.bl_p[bli];
            let p_last = win.blpos_p[bl.pos_hi as usize - 1] as i64;
            for gi in lo..hi {
                win.exp_p.push((
                    (win.pg[gi as usize].t_last - t0) * kk + p_last,
                    gi,
                    bli as u32,
                ));
            }
        }
        win.exp_p.sort_unstable();
        let mut exp_cur_l = 0usize;
        let mut exp_cur_p = 0usize;
        win.lg_cur.clear();
        win.lg_cur.extend(win.lg_range.iter().map(|r| r.0));
        win.pg_cur.clear();
        win.pg_cur.extend(win.pg_range.iter().map(|r| r.0));
        let l1_clock0 = self.caches[0].clock;
        let tlb_clock0 = self.tlb.clock;
        win.walked.clear();
        win.walked.resize(nlanes, 0);
        // Exclusive global position bound of the accounted (covered)
        // prefix; shrinks if an event storm truncates the window.
        let mut covered_end_g = kk * h;
        let mut truncated: Option<WinEvent> = None;
        // Demotions synthesize new events mid-replay; past this many the
        // window has degenerated into a walk and is cut short (truncation
        // at an already-replayed event is always exact).
        let ev_cap = ((kk * h) / 2) as usize;
        let mut ei = 0;
        while ei < win.events.len() {
            let e = win.events[ei];
            let g_e = (e.t - t0) * kk + e.pos as i64;
            self.caches[0].clock = l1_clock0 + g_e as u64;
            self.tlb.clock = tlb_clock0 + g_e as u64;
            let lane = win.lanes[e.lane as usize];
            let addr = stream_addr(lane.base, lane.stride, e.t).expect("prechecked window") as u64;
            let line = addr >> lb;
            let page = addr >> pb;
            // Replicate the victim choices the access is about to make
            // (first slot with a strictly smaller stamp wins, exactly as
            // in `Cache::access` / `Tlb::access`) so evictions can be
            // checked against the window's assumptions afterwards.
            let l1_evicted = if self.caches[0].probe(line).is_none() {
                let set = (line & self.caches[0].set_mask) as usize;
                let ways = self.caches[0].ways;
                // Victim selection reads this set's stamps: every
                // covered access before the event must have restamped
                // first. The advance (full groups) is amortized and
                // runs only when a domain actually misses; the boundary
                // partial stamps are written just for the slots this
                // selection reads.
                advance_exp(
                    &win.exp_l,
                    &mut exp_cur_l,
                    &win.lg,
                    &mut win.lg_cur,
                    &mut self.caches[0].stamps,
                    l1_clock0,
                    g_e,
                );
                partial_stamp(
                    &win.lg,
                    &win.lg_cur,
                    &win.lg_range,
                    &win.bl_l,
                    &win.blpos_l,
                    &mut self.caches[0].stamps,
                    l1_clock0,
                    t0,
                    kk,
                    g_e,
                    |s| s as usize / ways == set,
                );
                let l1 = &self.caches[0];
                let base = set * ways;
                let mut victim = base;
                let mut oldest = u64::MAX;
                for i in base..base + ways {
                    if l1.stamps[i] < oldest {
                        oldest = l1.stamps[i];
                        victim = i;
                    }
                }
                l1.tags[victim]
            } else {
                INVALID
            };
            let tlb_evicted = if self.tlb.probe(page).is_none() {
                advance_exp(
                    &win.exp_p,
                    &mut exp_cur_p,
                    &win.pg,
                    &mut win.pg_cur,
                    &mut self.tlb.stamps,
                    tlb_clock0,
                    g_e,
                );
                partial_stamp(
                    &win.pg,
                    &win.pg_cur,
                    &win.pg_range,
                    &win.bl_p,
                    &win.blpos_p,
                    &mut self.tlb.stamps,
                    tlb_clock0,
                    t0,
                    kk,
                    g_e,
                    |_| true,
                );
                let mut victim = 0;
                let mut oldest = u64::MAX;
                for (i, &st) in self.tlb.stamps.iter().enumerate() {
                    if st < oldest {
                        oldest = st;
                        victim = i;
                    }
                }
                self.tlb.pages[victim]
            } else {
                INVALID
            };
            if attribute {
                self.access_tagged(addr, lane.kind, lane.tag as usize);
            } else {
                self.access(addr, lane.kind);
            }
            win.walked[e.lane as usize] += 1;
            // The fill slots become known only now: patch them into
            // every probed-absent group on the same block (any lane) so
            // later bulked touches restamp them.
            if let Some(slot) = self.caches[0].probe(line) {
                let lo = win.lg_idx.partition_point(|&(b, _, _)| b < line);
                for &(b, gi, _) in &win.lg_idx[lo..] {
                    if b != line {
                        break;
                    }
                    let g = &mut win.lg[gi as usize];
                    if g.slot == WIN_MISS {
                        g.slot = slot;
                    }
                }
            }
            if let Some(slot) = self.tlb.probe(page) {
                let lo = win.pg_idx.partition_point(|&(b, _, _)| b < page);
                for &(b, gi, _) in &win.pg_idx[lo..] {
                    if b != page {
                        break;
                    }
                    let g = &mut win.pg[gi as usize];
                    if g.slot == WIN_MISS {
                        g.slot = slot;
                    }
                }
            }
            // Eviction of a block with *remaining* bulked touches would
            // invalidate the window's residency assumption — demote
            // those groups to absent and synthesize a walk event at the
            // block's next touch, which refills it (fully-consumed
            // groups no longer assume anything, and a [`WIN_MISS`] group
            // assumes absence, which eviction cannot invalidate).
            let mut synth: [Option<(i64, u32, u64)>; 2] = [None, None];
            if l1_evicted != INVALID {
                synth[0] = demote_block(
                    &mut win.lg,
                    &win.lg_idx,
                    &win.lg_cur,
                    &win.bl_l,
                    &win.blpos_l,
                    l1_evicted,
                    t0,
                    kk,
                    g_e,
                )
                .map(|(t, p)| (t, p, l1_evicted));
            }
            if tlb_evicted != INVALID {
                synth[1] = demote_block(
                    &mut win.pg,
                    &win.pg_idx,
                    &win.pg_cur,
                    &win.bl_p,
                    &win.blpos_p,
                    tlb_evicted,
                    t0,
                    kk,
                    g_e,
                )
                .map(|(t, p)| (t, p, tlb_evicted));
            }
            let mut cut = false;
            for s in synth.into_iter().flatten() {
                let (t, p, block) = s;
                if win.events.len() >= ev_cap {
                    cut = true;
                    break;
                }
                let at =
                    ei + 1 + win.events[ei + 1..].partition_point(|e2| (e2.t, e2.pos) < (t, p));
                // An event already replaying that very access services
                // both domains (it walks the real access): skip.
                if win
                    .events
                    .get(at)
                    .is_some_and(|e2| e2.t == t && e2.pos == p)
                {
                    continue;
                }
                win.events.insert(
                    at,
                    WinEvent {
                        t,
                        pos: p,
                        lane: win.lane_of[p as usize],
                        block,
                    },
                );
            }
            if cut {
                covered_end_g = g_e + 1;
                truncated = Some(e);
                break;
            }
            ei += 1;
        }
        // Stamp every remaining covered touch and move the clocks to the
        // end of the covered prefix (events already ticked them along
        // the way; the absolute store subsumes those ticks).
        advance_exp(
            &win.exp_l,
            &mut exp_cur_l,
            &win.lg,
            &mut win.lg_cur,
            &mut self.caches[0].stamps,
            l1_clock0,
            covered_end_g,
        );
        partial_stamp(
            &win.lg,
            &win.lg_cur,
            &win.lg_range,
            &win.bl_l,
            &win.blpos_l,
            &mut self.caches[0].stamps,
            l1_clock0,
            t0,
            kk,
            covered_end_g,
            |_| true,
        );
        advance_exp(
            &win.exp_p,
            &mut exp_cur_p,
            &win.pg,
            &mut win.pg_cur,
            &mut self.tlb.stamps,
            tlb_clock0,
            covered_end_g,
        );
        partial_stamp(
            &win.pg,
            &win.pg_cur,
            &win.pg_range,
            &win.bl_p,
            &win.blpos_p,
            &mut self.tlb.stamps,
            tlb_clock0,
            t0,
            kk,
            covered_end_g,
            |_| true,
        );
        self.caches[0].clock = l1_clock0 + covered_end_g as u64;
        self.tlb.clock = tlb_clock0 + covered_end_g as u64;
        // Issue costs and attribution for the bulked accesses (events
        // already counted themselves when they walked).
        let mut ff_total = 0u64;
        for (li, lane) in win.lanes.iter().enumerate() {
            let mut covered = 0u64;
            for &p in &win.lane_pos[lane.pos_lo as usize..lane.pos_hi as usize] {
                if covered_end_g > p as i64 {
                    covered += ((covered_end_g - 1 - p as i64) / kk + 1) as u64;
                }
            }
            let bulk = covered - win.walked[li] as u64;
            self.bulk_issue(bulk, lane.kind);
            if attribute && !matches!(lane.kind, AccessKind::Prefetch) {
                self.counters.per_tag[lane.tag as usize].accesses += bulk;
                self.stats.per_tag_ff[lane.tag as usize] += bulk;
            }
            ff_total += bulk;
        }
        self.stats.ff_windows += 1;
        self.stats.ff_accesses += ff_total;
        let nev = win.events.len() as u32;
        let ngrp = (win.lg.len() + win.pg.len()) as u32;
        if let Some(e) = truncated {
            // The truncating event already left the same-line shortcut
            // state (`last_*`) describing itself, exactly as a walk
            // would. Walk out the rest of its iteration; the caller
            // re-probes from the next one.
            for pos in (e.pos as usize + 1)..k {
                let s = &streams[active[pos] as usize];
                let addr = (s.base as u64).wrapping_add_signed(s.stride.wrapping_mul(e.t));
                if attribute {
                    self.access_tagged(addr, s.kind, s.tag as usize);
                } else {
                    self.access(addr, s.kind);
                }
            }
            (e.t + 1, nev, ngrp)
        } else {
            // The same-line shortcut state must describe the window's
            // final access, exactly as a walk would have left it. (If
            // that access was itself an event it already did; the probe
            // then just re-reads the slots it recorded.)
            let s = &streams[*active.last().expect("non-empty active set") as usize];
            let addr = stream_addr(s.base, s.stride, te - 1).expect("prechecked window");
            self.last_line = (addr >> lb) as u64;
            self.last_l1_slot = self.caches[0]
                .probe(self.last_line)
                .expect("covered window");
            self.last_tlb_slot = self.tlb.probe((addr >> pb) as u64).expect("covered window");
            (te, nev, ngrp)
        }
    }

    /// Simulates `count` accesses at `base, base + stride, base +
    /// 2·stride, …` — exactly equivalent to the per-access loop
    ///
    /// ```ignore
    /// for t in 0..count { h.access(base + t * stride, kind) }
    /// ```
    ///
    /// (or `access_tagged` when `tag` is given). A single-stream
    /// convenience wrapper over [`MemoryHierarchy::access_streams`],
    /// which batches line runs and fast-forwards provably-resident
    /// windows.
    ///
    /// The caller must guarantee every address in the run is mapped
    /// (in-bounds); `stride` may be zero or negative.
    pub fn access_run(
        &mut self,
        base: u64,
        stride: i64,
        count: u64,
        kind: AccessKind,
        tag: Option<usize>,
    ) {
        let spec = StreamSpec {
            base: base as i64,
            stride,
            vlo: 0,
            vhi: count as i64 - 1,
            kind,
            tag: tag.unwrap_or(0) as u32,
        };
        self.access_streams(&[spec], count as i64, tag.is_some());
    }

    /// Adds `n` floating-point operations to the cost.
    pub fn add_flops(&mut self, n: u64) {
        self.counters.flops += n;
        self.counters.cycles_x1000 += n * self.flop_x1000;
    }

    /// Adds `n` loop iterations' worth of control overhead.
    pub fn add_loop_iterations(&mut self, n: u64) {
        self.counters.loop_iterations += n;
        self.counters.cycles_x1000 += n * self.loop_overhead_x1000;
    }

    /// The counters accumulated so far.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Fast-forward telemetry accumulated so far (not part of the
    /// architectural counters).
    pub fn sim_stats(&self) -> &SimStats {
        &self.stats
    }

    /// Consumes the hierarchy and returns its counters.
    pub fn into_counters(self) -> Counters {
        self.counters
    }

    /// Consumes the hierarchy and returns counters plus fast-forward
    /// telemetry.
    pub fn into_parts(self) -> (Counters, SimStats) {
        (self.counters, self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_machine::CostModel;

    fn tiny_machine() -> MachineDesc {
        MachineDesc {
            name: "tiny".into(),
            clock_mhz: 100,
            fp_registers: 32,
            caches: vec![
                CacheDesc {
                    name: "L1".into(),
                    capacity_bytes: 256, // 8 lines of 32B
                    associativity: 2,
                    line_bytes: 32,
                    miss_penalty_cycles: 10,
                },
                CacheDesc {
                    name: "L2".into(),
                    capacity_bytes: 1024,
                    associativity: 2,
                    line_bytes: 64,
                    miss_penalty_cycles: 80,
                },
            ],
            tlb: TlbDesc {
                entries: 4,
                page_bytes: 256,
                miss_penalty_cycles: 50,
            },
            cost: CostModel::default(),
        }
    }

    #[test]
    fn spatial_locality_hits_within_line() {
        let mut h = MemoryHierarchy::new(&tiny_machine());
        for off in 0..4 {
            h.access(off * 8, AccessKind::Load);
        }
        assert_eq!(h.counters().loads, 4);
        assert_eq!(h.counters().cache_misses[0], 1);
        assert_eq!(h.counters().cache_misses[1], 1);
        assert_eq!(h.counters().tlb_misses, 1);
    }

    #[test]
    fn temporal_locality_within_capacity() {
        let mut h = MemoryHierarchy::new(&tiny_machine());
        // 8 distinct lines fill L1 exactly; second sweep all hits.
        for rep in 0..2 {
            for line in 0..8u64 {
                h.access(line * 32, AccessKind::Load);
            }
            if rep == 0 {
                assert_eq!(h.counters().cache_misses[0], 8);
            }
        }
        assert_eq!(h.counters().cache_misses[0], 8, "second sweep hits");
    }

    #[test]
    fn capacity_misses_beyond_cache() {
        let mut h = MemoryHierarchy::new(&tiny_machine());
        // 16 lines cycled twice thrash the 8-line LRU L1 completely.
        for _ in 0..2 {
            for line in 0..16u64 {
                h.access(line * 32, AccessKind::Load);
            }
        }
        assert_eq!(h.counters().cache_misses[0], 32);
        // but the data (8 x 64B L2 lines) fits in the 16-line L2:
        // only the first sweep's compulsory misses show up there.
        assert_eq!(h.counters().cache_misses[1], 8);
    }

    #[test]
    fn conflict_misses_in_same_set() {
        let mut h = MemoryHierarchy::new(&tiny_machine());
        // L1: 8 lines, 2-way => 4 sets, set stride = 128 B.
        // Three lines mapping to set 0 thrash a 2-way set.
        for _ in 0..10 {
            for k in 0..3u64 {
                h.access(k * 128, AccessKind::Load);
            }
        }
        assert_eq!(h.counters().cache_misses[0], 30, "every access conflicts");
    }

    #[test]
    fn two_way_avoids_conflict_that_direct_mapped_has() {
        let mut dm = tiny_machine();
        dm.caches[0].associativity = 1;
        let mut h2 = MemoryHierarchy::new(&tiny_machine());
        let mut h1 = MemoryHierarchy::new(&dm);
        // Two lines 256 B apart: same set in both configs.
        for _ in 0..10 {
            for k in 0..2u64 {
                h1.access(k * 256, AccessKind::Load);
                h2.access(k * 256, AccessKind::Load);
            }
        }
        assert_eq!(h1.counters().cache_misses[0], 20, "direct-mapped thrashes");
        assert_eq!(h2.counters().cache_misses[0], 2, "2-way keeps both");
    }

    #[test]
    fn store_is_write_allocate() {
        let mut h = MemoryHierarchy::new(&tiny_machine());
        h.access(0, AccessKind::Store);
        h.access(8, AccessKind::Load);
        assert_eq!(h.counters().stores, 1);
        assert_eq!(h.counters().cache_misses[0], 1, "load hits allocated line");
    }

    #[test]
    fn tlb_covers_four_pages() {
        let mut h = MemoryHierarchy::new(&tiny_machine());
        // 4 pages covered; a 5-page round-robin thrashes the LRU TLB.
        for _ in 0..3 {
            for p in 0..5u64 {
                h.access(p * 256, AccessKind::Load);
            }
        }
        assert_eq!(h.counters().tlb_misses, 15);
    }

    #[test]
    fn prefetch_hides_stall_but_pays_bandwidth() {
        let m = tiny_machine();
        let mut with = MemoryHierarchy::new(&m);
        let mut without = MemoryHierarchy::new(&m);
        for line in 0..64u64 {
            with.access(line * 64 + 32, AccessKind::Prefetch);
            with.access(line * 64, AccessKind::Load);
            without.access(line * 64, AccessKind::Load);
        }
        let cw = with.counters();
        let cwo = without.counters();
        assert_eq!(cw.cache_misses[1], 0, "demand misses eliminated at L2");
        assert_eq!(cwo.cache_misses[1], 64);
        assert!(
            cw.cycles() < cwo.cycles(),
            "prefetch must be a net win here"
        );
        assert_eq!(cw.prefetch_fills[1], 64);
    }

    #[test]
    fn prefetch_counts_as_load_in_paper_metric() {
        let mut h = MemoryHierarchy::new(&tiny_machine());
        h.access(0, AccessKind::Load);
        h.access(4096, AccessKind::Prefetch);
        assert_eq!(h.counters().loads, 1);
        assert_eq!(h.counters().loads_incl_prefetch(), 2);
    }

    #[test]
    fn flops_and_mflops() {
        let m = tiny_machine();
        let mut h = MemoryHierarchy::new(&m);
        h.add_flops(1000);
        let c = h.into_counters();
        assert_eq!(c.flops, 1000);
        // 1000 flops at 0.5 cycles each = 500 cycles; 100 MHz clock.
        assert_eq!(c.cycles(), 500);
        assert!((c.mflops(100) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn loop_overhead_accumulates() {
        let mut h = MemoryHierarchy::new(&tiny_machine());
        h.add_loop_iterations(10);
        assert_eq!(h.counters().loop_iterations, 10);
        assert_eq!(h.counters().cycles(), 10);
    }

    #[test]
    fn empty_counters_mflops_is_zero() {
        let c = Counters::default();
        assert_eq!(c.mflops(1000), 0.0);
    }

    /// A deliberately naive re-implementation of the documented
    /// semantics (no MRU shortcut, no same-line fast path), used to
    /// check that the optimized paths are behaviour-preserving — down
    /// to the LRU stamps, whose influence shows up as eviction (miss)
    /// differences on long adversarial streams.
    mod naive {
        use super::super::{AccessKind, Counters};
        use eco_machine::MachineDesc;

        pub struct Model {
            line_bits: Vec<u32>,
            set_mask: Vec<u64>,
            ways: Vec<usize>,
            tags: Vec<Vec<u64>>,
            stamps: Vec<Vec<u64>>,
            clocks: Vec<u64>,
            miss_pen: Vec<u64>,
            page_bits: u32,
            tlb_pages: Vec<u64>,
            tlb_stamps: Vec<u64>,
            tlb_clock: u64,
            tlb_pen: u64,
            pub counters: Counters,
            mem_issue: u64,
            pf_issue: u64,
            bw_line: u64,
        }

        impl Model {
            pub fn new(m: &MachineDesc) -> Self {
                Model {
                    line_bits: m
                        .caches
                        .iter()
                        .map(|c| c.line_bytes.trailing_zeros())
                        .collect(),
                    set_mask: m.caches.iter().map(|c| c.num_sets() as u64 - 1).collect(),
                    ways: m.caches.iter().map(|c| c.associativity).collect(),
                    tags: m
                        .caches
                        .iter()
                        .map(|c| vec![u64::MAX; c.num_sets() * c.associativity])
                        .collect(),
                    stamps: m
                        .caches
                        .iter()
                        .map(|c| vec![0; c.num_sets() * c.associativity])
                        .collect(),
                    clocks: vec![0; m.caches.len()],
                    miss_pen: m
                        .caches
                        .iter()
                        .map(|c| c.miss_penalty_cycles * 1000)
                        .collect(),
                    page_bits: m.tlb.page_bytes.trailing_zeros(),
                    tlb_pages: vec![u64::MAX; m.tlb.entries],
                    tlb_stamps: vec![0; m.tlb.entries],
                    tlb_clock: 0,
                    tlb_pen: m.tlb.miss_penalty_cycles * 1000,
                    counters: Counters {
                        cache_misses: vec![0; m.caches.len()],
                        prefetch_fills: vec![0; m.caches.len()],
                        ..Default::default()
                    },
                    mem_issue: m.cost.mem_issue_cycles_x1000,
                    pf_issue: m.cost.prefetch_issue_cycles_x1000,
                    bw_line: m.cost.memory_bandwidth_cycles_per_line_x1000,
                }
            }

            fn cache_access(&mut self, level: usize, addr: u64) -> bool {
                let line = addr >> self.line_bits[level];
                let set = (line & self.set_mask[level]) as usize;
                let base = set * self.ways[level];
                self.clocks[level] += 1;
                let mut victim = base;
                let mut oldest = u64::MAX;
                for i in base..base + self.ways[level] {
                    if self.tags[level][i] == line {
                        self.stamps[level][i] = self.clocks[level];
                        return true;
                    }
                    if self.stamps[level][i] < oldest {
                        oldest = self.stamps[level][i];
                        victim = i;
                    }
                }
                self.tags[level][victim] = line;
                self.stamps[level][victim] = self.clocks[level];
                false
            }

            pub fn access(&mut self, addr: u64, kind: AccessKind) {
                let is_prefetch = matches!(kind, AccessKind::Prefetch);
                match kind {
                    AccessKind::Load => {
                        self.counters.loads += 1;
                        self.counters.cycles_x1000 += self.mem_issue;
                    }
                    AccessKind::Store => {
                        self.counters.stores += 1;
                        self.counters.cycles_x1000 += self.mem_issue;
                    }
                    AccessKind::Prefetch => {
                        self.counters.prefetches += 1;
                        self.counters.cycles_x1000 += self.pf_issue;
                    }
                }
                let page = addr >> self.page_bits;
                self.tlb_clock += 1;
                let mut hit = false;
                let mut victim = 0;
                let mut oldest = u64::MAX;
                for i in 0..self.tlb_pages.len() {
                    if self.tlb_pages[i] == page {
                        self.tlb_stamps[i] = self.tlb_clock;
                        hit = true;
                        break;
                    }
                    if self.tlb_stamps[i] < oldest {
                        oldest = self.tlb_stamps[i];
                        victim = i;
                    }
                }
                if !hit {
                    self.tlb_pages[victim] = page;
                    self.tlb_stamps[victim] = self.tlb_clock;
                    self.counters.tlb_misses += 1;
                    self.counters.cycles_x1000 += self.tlb_pen;
                }
                let mut filled = true;
                for level in 0..self.clocks.len() {
                    let hit = self.cache_access(level, addr);
                    if !hit {
                        if is_prefetch {
                            self.counters.prefetch_fills[level] += 1;
                        } else {
                            self.counters.cache_misses[level] += 1;
                            self.counters.cycles_x1000 += self.miss_pen[level];
                        }
                    } else {
                        filled = false;
                        break;
                    }
                }
                if filled {
                    self.counters.cycles_x1000 += self.bw_line;
                }
            }
        }
    }

    /// A small deterministic generator for access streams that mix
    /// strided runs (which exercise the fast path) with random jumps
    /// (which break it) and all three access kinds.
    fn pseudo_stream(seed: u64, len: usize, span: u64) -> Vec<(u64, AccessKind)> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut out = Vec::with_capacity(len);
        let mut addr = 0u64;
        while out.len() < len {
            let r = next();
            let kind = match r % 10 {
                0..=5 => AccessKind::Load,
                6..=8 => AccessKind::Store,
                _ => AccessKind::Prefetch,
            };
            if r % 4 == 0 {
                addr = next() % span;
            }
            let stride = [0i64, 8, 8, 8, 16, 32, -8, 24][(next() % 8) as usize];
            let run = 1 + next() % 9;
            for _ in 0..run {
                out.push((addr % span, kind));
                addr = addr.wrapping_add_signed(stride) % span;
                if out.len() == len {
                    break;
                }
            }
        }
        out
    }

    #[test]
    fn fast_paths_match_naive_model() {
        for seed in [3u64, 17, 92, 1234] {
            let m = tiny_machine();
            let mut fast = MemoryHierarchy::new(&m);
            let mut slow = naive::Model::new(&m);
            for (addr, kind) in pseudo_stream(seed, 4000, 16384) {
                fast.access(addr, kind);
                slow.access(addr, kind);
            }
            assert_eq!(fast.into_counters(), slow.counters, "seed {seed}");
        }
    }

    #[test]
    fn fast_paths_match_naive_model_on_real_machines() {
        for m in [
            MachineDesc::sgi_r10000().scaled(32),
            MachineDesc::ultrasparc_iie().scaled(32),
        ] {
            let mut fast = MemoryHierarchy::new(&m);
            let mut slow = naive::Model::new(&m);
            for (addr, kind) in pseudo_stream(7, 6000, 1 << 20) {
                fast.access(addr, kind);
                slow.access(addr, kind);
            }
            assert_eq!(fast.into_counters(), slow.counters, "machine {}", m.name);
        }
    }

    #[test]
    fn access_run_equals_per_access_loop() {
        let cases: &[(u64, i64, u64)] = &[
            (0, 8, 100),     // unit stride
            (12, 8, 1),      // single access
            (0, 8, 0),       // empty run
            (5, 0, 40),      // zero stride
            (40, 4, 17),     // sub-element stride
            (8192, -8, 64),  // descending
            (3, 32, 50),     // exactly one per line
            (0, 48, 33),     // line-crossing stride
            (100, 1000, 20), // page-crossing stride
        ];
        for kind in [AccessKind::Load, AccessKind::Store, AccessKind::Prefetch] {
            for &(base, stride, count) in cases {
                let m = tiny_machine();
                let mut a = MemoryHierarchy::new(&m);
                let mut b = MemoryHierarchy::new(&m);
                // interleave with a warm-up so the run starts from a
                // non-trivial cache state
                for t in 0..32 {
                    a.access(t * 8, AccessKind::Load);
                    b.access(t * 8, AccessKind::Load);
                }
                a.access_run(base, stride, count, kind, None);
                for t in 0..count {
                    b.access(base.wrapping_add_signed(stride * t as i64), kind);
                }
                // and the post-run state must agree too: do a sweep that
                // is sensitive to LRU stamp differences
                for t in 0..64 {
                    a.access(t * 32, kind);
                    b.access(t * 32, kind);
                }
                assert_eq!(
                    a.into_counters(),
                    b.into_counters(),
                    "kind {kind:?} base {base} stride {stride} count {count}"
                );
            }
        }
    }

    /// Satellite edge cases called out by the vectorization issue, each
    /// against per-access reference simulation from a warmed state:
    /// stride larger than a line, stride crossing a page/TLB boundary,
    /// negative strides, zero-length runs, and runs that straddle a set
    /// wraparound (consecutive lines mapping back to set 0).
    #[test]
    fn access_run_edge_cases_equal_per_access_loop() {
        let cases: &[(&str, u64, i64, u64)] = &[
            ("stride larger than a line", 0, 40, 60),
            ("stride of many lines", 64, 160, 50),
            ("stride crossing pages", 0, 300, 40),
            ("exactly one access per page", 128, 256, 30),
            ("negative line-crossing stride", 16384, -40, 80),
            ("negative page-crossing stride", 32768, -300, 40),
            ("zero-length run", 512, 8, 0),
            ("zero-length negative stride", 512, -8, 0),
            // L1 has 4 sets of 32B lines: 128B wraps back to set 0, so a
            // long unit-line run cycles every set several times.
            ("set wraparound ascending", 0, 32, 24),
            ("set wraparound descending", 4096, -32, 24),
            ("set wraparound with conflicts", 0, 128, 40),
        ];
        for kind in [AccessKind::Load, AccessKind::Store, AccessKind::Prefetch] {
            for &(name, base, stride, count) in cases {
                let m = tiny_machine();
                let mut a = MemoryHierarchy::new(&m);
                let mut b = MemoryHierarchy::new(&m);
                for t in 0..48 {
                    a.access(t * 8, AccessKind::Load);
                    b.access(t * 8, AccessKind::Load);
                }
                a.access_run(base, stride, count, kind, None);
                for t in 0..count {
                    b.access(base.wrapping_add_signed(stride * t as i64), kind);
                }
                // post-state must agree too (LRU-stamp sensitive sweep)
                for t in 0..64 {
                    a.access(t * 32, kind);
                    b.access(t * 32, kind);
                }
                assert_eq!(
                    a.into_counters(),
                    b.into_counters(),
                    "{name}: kind {kind:?} base {base} stride {stride} count {count}"
                );
            }
        }
    }

    /// Multi-stream batches (the shape the compiled plan hands over)
    /// must match the interleaved per-access loop exactly, including
    /// partially-active (prefetch-window) streams, shared lines between
    /// streams, and tags.
    #[test]
    fn access_streams_equals_interleaved_loop() {
        let batches: &[&[StreamSpec]] = &[
            // MM inner-loop shape: invariant A, unit-stride B and C
            // (load + store), all resident after the first lines fill.
            &[
                StreamSpec {
                    base: 0,
                    stride: 0,
                    vlo: 0,
                    vhi: 63,
                    kind: AccessKind::Load,
                    tag: 0,
                },
                StreamSpec {
                    base: 1024,
                    stride: 8,
                    vlo: 0,
                    vhi: 63,
                    kind: AccessKind::Load,
                    tag: 1,
                },
                StreamSpec {
                    base: 2048,
                    stride: 8,
                    vlo: 0,
                    vhi: 63,
                    kind: AccessKind::Load,
                    tag: 2,
                },
                StreamSpec {
                    base: 2048,
                    stride: 8,
                    vlo: 0,
                    vhi: 63,
                    kind: AccessKind::Store,
                    tag: 2,
                },
            ],
            // Prefetch stream active only on a sub-window, ahead of a
            // demand stream sharing its lines.
            &[
                StreamSpec {
                    base: 0,
                    stride: 8,
                    vlo: 0,
                    vhi: 99,
                    kind: AccessKind::Load,
                    tag: 0,
                },
                StreamSpec {
                    base: 128,
                    stride: 8,
                    vlo: 5,
                    vhi: 80,
                    kind: AccessKind::Prefetch,
                    tag: 0,
                },
            ],
            // Conflicting streams thrashing one set (FF must keep
            // failing over to the walker) plus a negative stride.
            &[
                StreamSpec {
                    base: 0,
                    stride: 128,
                    vlo: 0,
                    vhi: 39,
                    kind: AccessKind::Load,
                    tag: 0,
                },
                StreamSpec {
                    base: 8192,
                    stride: 128,
                    vlo: 0,
                    vhi: 39,
                    kind: AccessKind::Load,
                    tag: 1,
                },
                StreamSpec {
                    base: 4096,
                    stride: -8,
                    vlo: 10,
                    vhi: 30,
                    kind: AccessKind::Store,
                    tag: 2,
                },
            ],
            // Disjoint validity windows: active set changes twice.
            &[
                StreamSpec {
                    base: 0,
                    stride: 8,
                    vlo: 0,
                    vhi: 19,
                    kind: AccessKind::Load,
                    tag: 0,
                },
                StreamSpec {
                    base: 512,
                    stride: 8,
                    vlo: 20,
                    vhi: 59,
                    kind: AccessKind::Store,
                    tag: 1,
                },
            ],
        ];
        for (bi, streams) in batches.iter().enumerate() {
            let trips = streams.iter().map(|s| s.vhi + 1).max().unwrap();
            for attribute in [false, true] {
                let m = tiny_machine();
                let mut a = MemoryHierarchy::new(&m);
                let mut b = MemoryHierarchy::new(&m);
                a.access_streams(streams, trips, attribute);
                for t in 0..trips {
                    for s in *streams {
                        if s.vlo <= t && t <= s.vhi {
                            let addr = (s.base + t * s.stride) as u64;
                            if attribute {
                                b.access_tagged(addr, s.kind, s.tag as usize);
                            } else {
                                b.access(addr, s.kind);
                            }
                        }
                    }
                }
                // LRU-stamp-sensitive post-sweep
                for t in 0..64u64 {
                    a.access(t * 32, AccessKind::Load);
                    b.access(t * 32, AccessKind::Load);
                }
                assert_eq!(
                    a.into_counters(),
                    b.into_counters(),
                    "batch {bi} attribute {attribute}"
                );
            }
        }
    }

    /// The resident MM-shaped batch must actually engage fast-forward —
    /// otherwise the exactness tests above are vacuous — and the
    /// telemetry must reconcile with the architectural access counts.
    #[test]
    fn fast_forward_engages_and_reconciles() {
        let m = tiny_machine();
        let mut h = MemoryHierarchy::new(&m);
        let streams = [
            StreamSpec {
                base: 0,
                stride: 0,
                vlo: 0,
                vhi: 255,
                kind: AccessKind::Load,
                tag: 0,
            },
            StreamSpec {
                base: 1024,
                stride: 8,
                vlo: 0,
                vhi: 255,
                kind: AccessKind::Load,
                tag: 1,
            },
        ];
        // 256 iterations over a 2-line + 64-line footprint: B streams
        // through L1 (8 lines) so only resident *windows* fast-forward.
        h.access_streams(&streams, 256, true);
        let stats = h.sim_stats().clone();
        let c = h.into_counters();
        assert!(stats.ff_windows > 0, "fast-forward never engaged");
        assert!(stats.ff_accesses > 0);
        let total = c.loads + c.stores + c.prefetches;
        assert!(stats.ff_accesses <= total);
        assert_eq!(stats.per_tag_ff.len(), 2);
        assert_eq!(stats.per_tag_ff.iter().sum::<u64>(), stats.ff_accesses);
        for (ff, t) in stats.per_tag_ff.iter().zip(&c.per_tag) {
            assert!(*ff <= t.accesses);
        }
        // A fully-resident zero-stride run fast-forwards almost
        // everything (first touch walks, the rest is arithmetic).
        let mut h2 = MemoryHierarchy::new(&m);
        h2.access_run(64, 0, 10_000, AccessKind::Load, None);
        assert!(h2.sim_stats().ff_accesses >= 9_990);
        assert_eq!(h2.counters().loads, 10_000);
        assert_eq!(h2.counters().cache_misses[0], 1);
    }

    #[test]
    fn access_run_tagged_equals_per_access_loop() {
        let m = tiny_machine();
        let mut a = MemoryHierarchy::new(&m);
        let mut b = MemoryHierarchy::new(&m);
        for kind in [AccessKind::Load, AccessKind::Store, AccessKind::Prefetch] {
            a.access_run(64, 8, 50, kind, Some(1));
            for t in 0..50u64 {
                b.access_tagged(64 + t * 8, kind, 1);
            }
        }
        assert_eq!(a.into_counters(), b.into_counters());
    }

    #[test]
    fn tagged_accesses_attribute_misses() {
        let mut h = MemoryHierarchy::new(&tiny_machine());
        // tag 0: one line, hit after first access; tag 1: thrashing.
        for i in 0..10u64 {
            h.access_tagged(0, AccessKind::Load, 0);
            h.access_tagged(4096 + i * 512, AccessKind::Load, 1);
        }
        let c = h.into_counters();
        assert_eq!(c.per_tag.len(), 2);
        assert_eq!(c.per_tag[0].accesses, 10);
        assert_eq!(c.per_tag[0].misses[0], 1);
        assert_eq!(c.per_tag[1].accesses, 10);
        assert_eq!(c.per_tag[1].misses[0], 10);
        // attribution is exhaustive
        assert_eq!(
            c.per_tag[0].misses[0] + c.per_tag[1].misses[0],
            c.cache_misses[0]
        );
        assert_eq!(
            c.per_tag[0].tlb_misses + c.per_tag[1].tlb_misses,
            c.tlb_misses
        );
    }
}
