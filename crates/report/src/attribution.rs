//! Memory-hierarchy attribution: model-predicted vs. simulated cost
//! per array reference, per level.
//!
//! The paper's search trusts the static footprint model for screening
//! and constraints, then lets empirical measurement overrule it. This
//! module makes that tension visible: for every variant a run searched,
//! it regenerates the variant's program, re-measures it with per-array
//! attribution ([`eco_core::EvalJob::attributed`]), and joins the simulator's
//! per-tag counters against the static model's per-reference
//! predictions ([`eco_core::model::estimate_refs`]) — one table per
//! variant, one row per array, one column pair per memory level
//! (register-level traffic, each cache, the TLB), flagging the spots
//! where the model misled the search.

use crate::profile::SearchProfile;
use eco_core::model::{estimate_refs, RefEstimate};
use eco_core::{derive_variants, generate, Optimizer, ParamValues};
use eco_kernels::Kernel;
use eco_machine::MachineDesc;

/// Model-vs-simulated figures for one memory level of one array.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelCell {
    /// Level label (`L1`, `L2`, …).
    pub level: String,
    /// Model-predicted misses (0 for arrays the model does not see,
    /// e.g. generated copy buffers).
    pub model: f64,
    /// Simulated misses from the attributed run.
    pub simulated: u64,
}

impl LevelCell {
    /// How far the model is off, as `simulated / model` (`None` when
    /// the model predicts ~0).
    pub fn ratio(&self) -> Option<f64> {
        (self.model > 1e-9).then(|| self.simulated as f64 / self.model)
    }
}

/// One attribution row: one array of the generated program.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributionRow {
    /// Array name in the generated program (copy buffers included).
    pub array: String,
    /// Model-predicted references issued (post register tiling).
    pub refs_model: f64,
    /// Simulated accesses reaching the hierarchy (loads + stores).
    pub refs_sim: u64,
    /// Of `refs_sim`, accesses the simulator fast-forwarded (accounted
    /// arithmetically instead of walked). Telemetry about how the
    /// simulation ran; the counters themselves are unaffected.
    pub ff_sim: u64,
    /// One cell per cache level, then the TLB (label `TLB`).
    pub levels: Vec<LevelCell>,
    /// Human-readable flags (`copy (not modeled)`, `model 8x low at
    /// L2`, …), deterministic order.
    pub flags: Vec<String>,
}

/// The attribution table of one variant.
#[derive(Debug, Clone, PartialEq)]
pub struct VariantAttribution {
    /// Variant name.
    pub variant: String,
    /// Label of the point measured (`initial` or `tuned`).
    pub point: String,
    /// Parameter values the program was generated at (sorted by name).
    pub params: Vec<(String, u64)>,
    /// Problem size.
    pub n: i64,
    /// Measured cycles of the attributed run.
    pub cycles: u64,
    /// One row per array, in `ArrayId` order of the generated program.
    pub rows: Vec<AttributionRow>,
}

/// Where `attribute_run` gets the context it cannot read from the
/// stream itself.
#[derive(Debug, Clone, Default)]
pub struct AttributionOptions {
    /// Machine override; by default the machine is resolved from the
    /// stream's `engine_init` fingerprint.
    pub machine: Option<MachineDesc>,
    /// Tuned parameter values of the selected variant (typically read
    /// from the run manifest); adds a `tuned` table for it.
    pub tuned: Option<(String, Vec<(String, u64)>)>,
    /// Worker threads for the re-measurement pass (0 = auto).
    /// Currently advisory: variants are re-measured serially so their
    /// fast-forward telemetry can be attributed per table.
    pub threads: usize,
}

/// Resolves a machine description from the fingerprint recorded by the
/// engine's `engine_init` event, by scanning the workspace's machine
/// models across plausible scale factors.
pub fn resolve_machine(fingerprint: u64) -> Option<MachineDesc> {
    let bases = [MachineDesc::sgi_r10000(), MachineDesc::ultrasparc_iie()];
    for base in &bases {
        if eco_core::machine_fingerprint(base) == fingerprint {
            return Some(base.clone());
        }
        for scale in 2..=256usize {
            // `scaled` panics past its validity limit; stop scanning a
            // base machine once the scale is no longer representable.
            let valid = base
                .caches
                .iter()
                .all(|c| c.capacity_bytes / scale >= c.line_bytes * c.associativity)
                && base.tlb.page_bytes / scale >= base.caches[0].line_bytes;
            if !valid {
                break;
            }
            let m = base.scaled(scale);
            if eco_core::machine_fingerprint(&m) == fingerprint {
                return Some(m);
            }
        }
    }
    None
}

/// The `engine_init` machine fingerprint of a stream, if recorded.
pub fn stream_machine_fingerprint(toplevel: &[eco_events::read::Record]) -> Option<u64> {
    toplevel
        .iter()
        .find(|r| r.name.as_deref() == Some("engine_init"))
        .and_then(|r| r.attr_str("machine_fingerprint"))
        .and_then(|s| u64::from_str_radix(s.trim_start_matches("0x"), 16).ok())
}

fn kernel_by_name(name: &str) -> Option<Kernel> {
    Kernel::all()
        .into_iter()
        .find(|k| k.name == name || k.program.name == name)
}

/// Builds the per-level attribution tables for a profiled run: one per
/// variant the search kept (at the optimizer's initial parameter
/// point), plus a `tuned` table when [`AttributionOptions::tuned`]
/// provides the winning parameters.
///
/// # Errors
///
/// Fails when the kernel or machine cannot be resolved, or when
/// generation/measurement of a variant fails.
pub fn attribute_run(
    profile: &SearchProfile,
    toplevel: &[eco_events::read::Record],
    opts: &AttributionOptions,
) -> Result<Vec<VariantAttribution>, String> {
    let kernel = kernel_by_name(&profile.kernel)
        .ok_or_else(|| format!("unknown kernel '{}' in stream", profile.kernel))?;
    let machine = match &opts.machine {
        Some(m) => m.clone(),
        None => {
            let fp = stream_machine_fingerprint(toplevel)
                .ok_or("stream has no engine_init machine fingerprint; pass --machine/--scale")?;
            resolve_machine(fp).ok_or_else(|| {
                format!("machine fingerprint {fp:#018x} matches no known machine/scale")
            })?
        }
    };
    let n = if profile.search_n > 0 {
        profile.search_n
    } else {
        48
    };
    let nest = eco_analysis::NestInfo::from_program(&kernel.program)
        .map_err(|e| format!("kernel '{}' not analyzable: {e}", kernel.name))?;
    let variants = derive_variants(&nest, &machine, &kernel.program);
    let optimizer = Optimizer::new(machine.clone());

    // Which variants to attribute: the ones the search fully explored,
    // in span order; fall back to the screened list.
    let mut targets: Vec<(String, String, ParamValues)> = Vec::new();
    let names: Vec<String> = if profile.variants.is_empty() {
        profile.screened.iter().map(|(v, _)| v.clone()).collect()
    } else {
        profile.variants.iter().map(|v| v.name.clone()).collect()
    };
    for name in names {
        let Some(variant) = variants.iter().find(|v| v.name == name) else {
            continue;
        };
        targets.push((
            name.clone(),
            "initial".to_string(),
            optimizer.initial_params(variant),
        ));
    }
    if let Some((selected, params)) = &opts.tuned {
        if variants.iter().any(|v| v.name == *selected) {
            let mut values = ParamValues::new();
            for (k, v) in params {
                values.insert(k.clone(), *v);
            }
            targets.push((selected.clone(), "tuned".to_string(), values));
        }
    }

    let mut out = Vec::new();
    for (name, point, params) in targets {
        let variant = variants
            .iter()
            .find(|v| v.name == name)
            .expect("targets built from variants");
        let program = generate(&kernel, &nest, variant, &params, &machine)
            .map_err(|e| format!("{name}: generation failed: {e}"))?;
        // Measured through the compiled plan directly (not the engine):
        // the attribution table also reports the simulator's per-tag
        // fast-forward telemetry, which only `measure_attributed_with_stats`
        // exposes.
        let plan = eco_exec::ExecutablePlan::compile(&program)
            .map_err(|e| format!("{name}: compilation failed: {e}"))?;
        let (counters, sim) = plan
            .measure_attributed_with_stats(
                &eco_exec::Params::new().with(kernel.size, n),
                &machine,
                &eco_exec::LayoutOptions::default(),
            )
            .map_err(|e| format!("{name}: measurement failed: {e}"))?;
        let model = estimate_refs(&nest, variant, &params, &machine, n as u64);

        // Model predictions per original array (summed over its refs).
        let arrays = &kernel.program;
        let model_for = |array_name: &str| -> Option<Vec<&RefEstimate>> {
            let hits: Vec<&RefEstimate> = model
                .iter()
                .filter(|r| arrays.array(r.array).name == array_name)
                .collect();
            (!hits.is_empty()).then_some(hits)
        };

        let mut rows = Vec::new();
        for (ti, tag) in counters.per_tag.iter().enumerate() {
            let array_name = program
                .arrays
                .get(ti)
                .map_or_else(|| format!("tag{ti}"), |a| a.name.clone());
            let refs = model_for(&array_name);
            let mut flags = Vec::new();
            let refs_model = match &refs {
                Some(rs) => rs.iter().map(|r| r.loads).sum(),
                None => {
                    flags.push("copy (not modeled)".to_string());
                    0.0
                }
            };
            let mut levels = Vec::new();
            for (ci, cache) in machine.caches.iter().enumerate() {
                let model_m = refs
                    .as_ref()
                    .map_or(0.0, |rs| rs.iter().map(|r| r.misses[ci]).sum());
                levels.push(LevelCell {
                    level: cache.name.clone(),
                    model: model_m,
                    simulated: *tag.misses.get(ci).unwrap_or(&0),
                });
            }
            levels.push(LevelCell {
                level: "TLB".to_string(),
                model: refs
                    .as_ref()
                    .map_or(0.0, |rs| rs.iter().map(|r| r.tlb_misses).sum()),
                simulated: tag.tlb_misses,
            });
            // Flag levels where the model is badly off on non-trivial
            // traffic: that is exactly where a model-only search would
            // have been misled.
            for cell in &levels {
                if cell.simulated < 64 && cell.model < 64.0 {
                    continue;
                }
                match cell.ratio() {
                    Some(r) if r >= 4.0 => {
                        flags.push(format!("model {:.0}x low at {}", r, cell.level))
                    }
                    Some(r) if r <= 0.25 => flags.push(format!(
                        "model {:.0}x high at {}",
                        (1.0 / r.max(1e-12)).min(9999.0),
                        cell.level
                    )),
                    None => flags.push(format!("unmodeled traffic at {}", cell.level)),
                    _ => {}
                }
            }
            rows.push(AttributionRow {
                array: array_name,
                refs_model,
                refs_sim: tag.accesses,
                ff_sim: sim.per_tag_ff.get(ti).copied().unwrap_or(0),
                levels,
                flags,
            });
        }
        let mut sorted_params: Vec<(String, u64)> =
            params.iter().map(|(k, v)| (k.clone(), *v)).collect();
        sorted_params.sort();
        out.push(VariantAttribution {
            variant: name,
            point,
            params: sorted_params,
            n,
            cycles: counters.cycles(),
            rows,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_resolution_round_trips_fingerprints() {
        for m in [
            MachineDesc::sgi_r10000(),
            MachineDesc::sgi_r10000().scaled(32),
            MachineDesc::ultrasparc_iie().scaled(8),
        ] {
            let fp = eco_core::machine_fingerprint(&m);
            let resolved = resolve_machine(fp).expect("resolves");
            assert_eq!(eco_core::machine_fingerprint(&resolved), fp);
            assert_eq!(resolved.name, m.name);
        }
        assert!(resolve_machine(0xdead_beef).is_none());
    }
}
