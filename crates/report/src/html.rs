//! Self-contained static HTML report with inline SVG.
//!
//! No external assets, scripts, or stylesheets are referenced: the
//! document embeds its own CSS and draws the stage timeline, the
//! search-landscape heatmap, and the best-so-far trajectory as inline
//! SVG, so the file can be archived next to the run's events and
//! opened years later. Rendering is deterministic for a given
//! [`RunReport`].

use crate::profile::SpanTree;
use crate::RunReport;
use eco_events::Json;
use std::fmt::Write as _;

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// Green→red ramp over `t` in [0, 1].
fn heat_color(t: f64) -> String {
    let t = t.clamp(0.0, 1.0);
    let r = (40.0 + t * 200.0).round() as u32;
    let g = (200.0 - t * 150.0).round() as u32;
    format!("#{r:02x}{g:02x}3c")
}

/// Fixed palette for span depths in the timeline.
const DEPTH_COLORS: [&str; 5] = ["#4a6fa5", "#5d9b68", "#c7a53c", "#b06558", "#8a6fae"];

/// One heatmap row: variant name and its best cycles per stage column.
type HeatRow = (String, Vec<Option<u64>>);

/// `(best cycles per (variant, stage), stage order)` for the heatmap.
fn heatmap_cells(tree: &SpanTree) -> (Vec<HeatRow>, Vec<String>) {
    let stages = ["shape", "halve", "refine", "prefetch", "adjust"];
    let mut rows = Vec::new();
    for (i, node) in tree.nodes.iter().enumerate() {
        if node.name != "variant" {
            continue;
        }
        let name = node
            .open_attr("variant")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string();
        let mut cells: Vec<Option<u64>> = vec![None; stages.len()];
        // Best cycles per stage name anywhere under this variant.
        fn walk(tree: &SpanTree, idx: usize, stages: &[&str], cells: &mut Vec<Option<u64>>) {
            for &c in &tree.nodes[idx].children {
                let node = &tree.nodes[c];
                if let Some(si) = stages.iter().position(|s| *s == node.name) {
                    let (_, _, _, best) = tree.subtree_points(c);
                    let best = best.or_else(|| node.close_attr("cycles").and_then(Json::as_u64));
                    cells[si] = match (cells[si], best) {
                        (Some(a), Some(b)) => Some(a.min(b)),
                        (a, b) => a.or(b),
                    };
                }
                walk(tree, c, stages, cells);
            }
        }
        walk(tree, i, &stages, &mut cells);
        rows.push((name, cells));
    }
    (rows, stages.iter().map(|s| s.to_string()).collect())
}

fn svg_heatmap(tree: &SpanTree) -> String {
    let (rows, stages) = heatmap_cells(tree);
    if rows.is_empty() {
        return String::from("<p>(no variant spans in stream)</p>");
    }
    let all: Vec<u64> = rows
        .iter()
        .flat_map(|(_, cs)| cs.iter().flatten().copied())
        .collect();
    let (lo, hi) = (
        all.iter().copied().min().unwrap_or(0),
        all.iter().copied().max().unwrap_or(1),
    );
    let cell_w = 90;
    let cell_h = 26;
    let label_w = 280;
    let width = label_w + stages.len() * cell_w + 10;
    let height = (rows.len() + 1) * cell_h + 10;
    let mut s = format!(
        "<svg viewBox=\"0 0 {width} {height}\" width=\"{width}\" height=\"{height}\" \
         xmlns=\"http://www.w3.org/2000/svg\" font-family=\"monospace\" font-size=\"12\">\n"
    );
    for (si, stage) in stages.iter().enumerate() {
        let x = label_w + si * cell_w + cell_w / 2;
        let _ = writeln!(
            s,
            "<text x=\"{x}\" y=\"16\" text-anchor=\"middle\">{}</text>",
            esc(stage)
        );
    }
    for (ri, (variant, cells)) in rows.iter().enumerate() {
        let y = (ri + 1) * cell_h + 8;
        let _ = writeln!(
            s,
            "<text x=\"{}\" y=\"{}\" text-anchor=\"end\">{}</text>",
            label_w - 8,
            y + cell_h / 2,
            esc(variant)
        );
        for (si, cell) in cells.iter().enumerate() {
            let x = label_w + si * cell_w;
            match cell {
                Some(c) => {
                    let t = if hi > lo {
                        (*c - lo) as f64 / (hi - lo) as f64
                    } else {
                        0.0
                    };
                    let _ = writeln!(
                        s,
                        "<rect x=\"{x}\" y=\"{y}\" width=\"{}\" height=\"{}\" fill=\"{}\">\
                         <title>{}: {} best {c} cycles</title></rect>",
                        cell_w - 2,
                        cell_h - 2,
                        heat_color(t),
                        esc(variant),
                        esc(&stages[si]),
                    );
                    let _ = writeln!(
                        s,
                        "<text x=\"{}\" y=\"{}\" text-anchor=\"middle\" fill=\"#fff\">{c}</text>",
                        x + cell_w / 2,
                        y + cell_h / 2 + 5,
                    );
                }
                None => {
                    let _ = writeln!(
                        s,
                        "<rect x=\"{x}\" y=\"{y}\" width=\"{}\" height=\"{}\" fill=\"#ddd\"/>",
                        cell_w - 2,
                        cell_h - 2,
                    );
                }
            }
        }
    }
    s.push_str("</svg>\n");
    s
}

fn svg_timeline(tree: &SpanTree) -> String {
    // Flatten spans depth-first with depth annotations.
    fn flatten(tree: &SpanTree, idx: usize, depth: usize, out: &mut Vec<(usize, usize)>) {
        out.push((idx, depth));
        for &c in &tree.nodes[idx].children {
            flatten(tree, c, depth + 1, out);
        }
    }
    let mut spans = Vec::new();
    for &r in &tree.roots {
        flatten(tree, r, 0, &mut spans);
    }
    if spans.is_empty() {
        return String::from("<p>(no spans in stream)</p>");
    }
    let t_end = spans
        .iter()
        .map(|&(i, _)| tree.nodes[i].t_close_us)
        .max()
        .unwrap_or(1)
        .max(1);
    let width = 960;
    let row_h = 18;
    let label_w = 200;
    let chart_w = width - label_w - 10;
    let height = spans.len() * row_h + 30;
    let mut s = format!(
        "<svg viewBox=\"0 0 {width} {height}\" width=\"{width}\" height=\"{height}\" \
         xmlns=\"http://www.w3.org/2000/svg\" font-family=\"monospace\" font-size=\"11\">\n"
    );
    for (ri, &(i, depth)) in spans.iter().enumerate() {
        let node = &tree.nodes[i];
        let y = ri * row_h + 20;
        let x0 = label_w + (node.t_open_us as f64 / t_end as f64 * chart_w as f64) as usize;
        let w = ((node.wall_us() as f64 / t_end as f64 * chart_w as f64) as usize).max(2);
        let color = DEPTH_COLORS[depth % DEPTH_COLORS.len()];
        let label = match node.open_attr("variant").and_then(Json::as_str) {
            Some(v) => format!("{} {v}", node.name),
            None => node.name.clone(),
        };
        let _ = writeln!(
            s,
            "<text x=\"{}\" y=\"{}\" text-anchor=\"end\">{}</text>",
            label_w - 6,
            y + 12,
            esc(&label)
        );
        let _ = writeln!(
            s,
            "<rect x=\"{x0}\" y=\"{y}\" width=\"{w}\" height=\"{}\" fill=\"{color}\">\
             <title>{} — {:.1} ms</title></rect>",
            row_h - 4,
            esc(&label),
            node.wall_us() as f64 / 1000.0,
        );
    }
    s.push_str("</svg>\n");
    s
}

fn svg_trajectory(tree: &SpanTree) -> String {
    // All point cycles in emission order, across the whole forest.
    let mut points: Vec<(u64, u64)> = Vec::new(); // (seq, cycles)
    for node in &tree.nodes {
        for e in &node.events {
            if e.name.as_deref() == Some("point") {
                if let Some(c) = e.attr_u64("cycles") {
                    points.push((e.seq, c));
                }
            }
        }
    }
    for e in &tree.toplevel {
        if e.name.as_deref() == Some("point") {
            if let Some(c) = e.attr_u64("cycles") {
                points.push((e.seq, c));
            }
        }
    }
    points.sort_unstable();
    if points.is_empty() {
        return String::from("<p>(no measured points in stream)</p>");
    }
    let mut best = u64::MAX;
    let series: Vec<u64> = points
        .iter()
        .map(|&(_, c)| {
            best = best.min(c);
            best
        })
        .collect();
    let lo = *series.last().expect("non-empty");
    let hi = points
        .iter()
        .map(|&(_, c)| c)
        .max()
        .unwrap_or(1)
        .max(lo + 1);
    let (width, height, pad) = (960, 180, 30);
    let mut s = format!(
        "<svg viewBox=\"0 0 {width} {height}\" width=\"{width}\" height=\"{height}\" \
         xmlns=\"http://www.w3.org/2000/svg\" font-family=\"monospace\" font-size=\"11\">\n"
    );
    let x_of = |i: usize| -> f64 {
        pad as f64 + i as f64 / (series.len().max(2) - 1) as f64 * (width - 2 * pad) as f64
    };
    let y_of = |c: u64| -> f64 {
        let t = (c - lo) as f64 / (hi - lo) as f64;
        (height - pad) as f64 - t * (height - 2 * pad) as f64
    };
    // Raw points as dots, best-so-far as a polyline.
    for (i, &(_, c)) in points.iter().enumerate() {
        let _ = writeln!(
            s,
            "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"1.5\" fill=\"#999\"/>",
            x_of(i),
            y_of(c)
        );
    }
    let poly: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, &c)| format!("{:.1},{:.1}", x_of(i), y_of(c)))
        .collect();
    let _ = writeln!(
        s,
        "<polyline points=\"{}\" fill=\"none\" stroke=\"#2c7a3d\" stroke-width=\"2\"/>",
        poly.join(" ")
    );
    let _ = writeln!(
        s,
        "<text x=\"{pad}\" y=\"14\">best-so-far cycles ({} points, best {lo})</text>",
        series.len()
    );
    s.push_str("</svg>\n");
    s
}

fn html_table(out: &mut String, headers: &[&str], rows: &[Vec<String>]) {
    out.push_str("<table><tr>");
    for h in headers {
        let _ = write!(out, "<th>{}</th>", esc(h));
    }
    out.push_str("</tr>\n");
    for row in rows {
        out.push_str("<tr>");
        for cell in row {
            let _ = write!(out, "<td>{}</td>", esc(cell));
        }
        out.push_str("</tr>\n");
    }
    out.push_str("</table>\n");
}

/// Renders the full self-contained HTML report for one or more runs.
pub fn render_html(reports: &[RunReport]) -> String {
    let mut s = String::from(
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n\
         <title>ECO search report</title>\n<style>\n\
         body{font-family:monospace;margin:24px;color:#222;max-width:1100px}\n\
         h1{font-size:20px} h2{font-size:16px;margin-top:28px} h3{font-size:14px}\n\
         table{border-collapse:collapse;margin:8px 0}\n\
         th,td{border:1px solid #bbb;padding:3px 8px;text-align:right}\n\
         th{background:#eee} td:first-child,th:first-child{text-align:left}\n\
         .flag{color:#a33}\n</style></head><body>\n\
         <h1>ECO search report</h1>\n",
    );
    for report in reports {
        let p = &report.profile;
        let _ = writeln!(
            s,
            "<h2>{} — kernel {}, strategy {}, N {}</h2>",
            esc(&report.source),
            esc(&p.kernel),
            esc(&p.strategy),
            p.search_n
        );
        let selected = match (&p.selected, p.selected_cycles) {
            (Some(v), Some(c)) => format!("{v} at {c} cycles"),
            _ => "(none)".to_string(),
        };
        let _ = writeln!(
            s,
            "<p>records {}, points {}, memo hits {} ({:.1}%), errors {}, wall {:.1} ms<br>\
             selected: {}</p>",
            report.records,
            p.points,
            p.memo_hits,
            p.hit_rate() * 100.0,
            p.errors,
            p.wall_us as f64 / 1000.0,
            esc(&selected)
        );

        s.push_str("<h3>Search landscape (best cycles per variant and stage)</h3>\n");
        s.push_str(&svg_heatmap(&report.tree));
        s.push_str("<h3>Best-so-far trajectory</h3>\n");
        s.push_str(&svg_trajectory(&report.tree));
        s.push_str("<h3>Stage timeline</h3>\n");
        s.push_str(&svg_timeline(&report.tree));

        s.push_str("<h3>Stage profile</h3>\n");
        let rows: Vec<Vec<String>> = p
            .stages
            .iter()
            .map(|st| {
                vec![
                    st.stage.clone(),
                    st.spans.to_string(),
                    st.points.to_string(),
                    st.memo_hits.to_string(),
                    format!("{:.1}", st.wall_us as f64 / 1000.0),
                ]
            })
            .collect();
        html_table(
            &mut s,
            &["stage", "spans", "points", "memo", "wall ms"],
            &rows,
        );

        s.push_str("<h3>Variant profile</h3>\n");
        let rows: Vec<Vec<String>> = p
            .variants
            .iter()
            .map(|v| {
                let cert = if v.certified + v.rejected == 0 {
                    "-".to_string()
                } else {
                    format!("{}/{}", v.certified, v.rejected)
                };
                vec![
                    v.name.clone(),
                    v.points.to_string(),
                    v.memo_hits.to_string(),
                    cert,
                    v.cycles.map_or_else(|| "-".to_string(), |c| c.to_string()),
                    v.outcome.clone(),
                    format!("{:.1}", v.wall_us as f64 / 1000.0),
                ]
            })
            .collect();
        html_table(
            &mut s,
            &[
                "variant", "points", "memo", "cert", "cycles", "outcome", "wall ms",
            ],
            &rows,
        );

        if !report.attribution.is_empty() {
            s.push_str("<h3>Memory-hierarchy attribution (model vs simulated)</h3>\n");
            for t in &report.attribution {
                let params: Vec<String> =
                    t.params.iter().map(|(k, v)| format!("{k}={v}")).collect();
                let _ = writeln!(
                    s,
                    "<p><b>{} ({})</b> — N {}, {} cycles, params {}</p>",
                    esc(&t.variant),
                    esc(&t.point),
                    t.n,
                    t.cycles,
                    esc(&params.join(" "))
                );
                let mut headers: Vec<String> = vec![
                    "array".into(),
                    "refs(mod)".into(),
                    "refs(sim)".into(),
                    "ff%".into(),
                ];
                if let Some(first) = t.rows.first() {
                    for cell in &first.levels {
                        headers.push(format!("{}(mod)", cell.level));
                        headers.push(format!("{}(sim)", cell.level));
                    }
                }
                headers.push("flags".into());
                let headers: Vec<&str> = headers.iter().map(String::as_str).collect();
                let rows: Vec<Vec<String>> = t
                    .rows
                    .iter()
                    .map(|r| {
                        let mut row = vec![
                            r.array.clone(),
                            format!("{:.0}", r.refs_model),
                            r.refs_sim.to_string(),
                            format!(
                                "{:.1}",
                                100.0 * r.ff_sim as f64 / (r.refs_sim.max(1)) as f64
                            ),
                        ];
                        for cell in &r.levels {
                            row.push(format!("{:.0}", cell.model));
                            row.push(cell.simulated.to_string());
                        }
                        row.push(r.flags.join("; "));
                        row
                    })
                    .collect();
                html_table(&mut s, &headers, &rows);
            }
        }

        if !p.lineage.is_empty() {
            s.push_str("<h3>Best-point lineage</h3>\n<pre>");
            for node in &p.lineage {
                let cycles = node
                    .cycles
                    .map_or_else(String::new, |c| format!("  {c} cycles"));
                let _ = writeln!(
                    s,
                    "{}{}{}",
                    "  ".repeat(node.depth),
                    esc(&node.label),
                    cycles
                );
            }
            s.push_str("</pre>\n");
        }
    }
    s.push_str("</body></html>\n");
    s
}
