//! Span-tree reconstruction and the search profile.
//!
//! The search emits a nested span stream (`optimize > screen/variant >
//! stage > shape/halve/refine`, `prefetch`, `adjust`) with `point`
//! events attached to the stage that proposed each measurement. This
//! module folds that stream back into a tree and derives the questions
//! an engineer actually asks of a run: where did the wall time go,
//! which stages generated the points, how much did the memo cache help,
//! and how did the winning point's cycle count evolve stage by stage.

use eco_events::read::{Record, RecordKind};
use eco_events::Json;

/// One reconstructed span: its open/close attributes, timing, child
/// spans, and the events attributed directly to it.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// Serialized span id.
    pub id: u64,
    /// Span name (`optimize`, `screen`, `variant`, `stage`, …).
    pub name: String,
    /// Attributes of the `span_open` record, in emission order.
    pub open_attrs: Vec<(String, Json)>,
    /// Attributes of the `span_close` record, in emission order.
    pub close_attrs: Vec<(String, Json)>,
    /// `t_us` of the open record.
    pub t_open_us: u64,
    /// `t_us` of the close record.
    pub t_close_us: u64,
    /// Child spans, as indices into [`SpanTree::nodes`], in open order.
    pub children: Vec<usize>,
    /// Events attributed to this span, in emission order.
    pub events: Vec<Record>,
}

impl SpanNode {
    /// Wall time between open and close.
    pub fn wall_us(&self) -> u64 {
        self.t_close_us.saturating_sub(self.t_open_us)
    }

    /// An open-record attribute.
    pub fn open_attr(&self, key: &str) -> Option<&Json> {
        self.open_attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// A close-record attribute.
    pub fn close_attr(&self, key: &str) -> Option<&Json> {
        self.close_attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// The reconstructed span forest of one event stream, plus the
/// span-less records (`batch`, `engine_stats`, `plan_compile`,
/// `engine_init`).
#[derive(Debug, Clone, Default)]
pub struct SpanTree {
    /// All spans, in open order; tree edges are in
    /// [`SpanNode::children`].
    pub nodes: Vec<SpanNode>,
    /// Root spans (no parent), in open order.
    pub roots: Vec<usize>,
    /// Events with `span: 0`, in emission order.
    pub toplevel: Vec<Record>,
}

impl SpanTree {
    /// Rebuilds the span forest from parsed records. The caller is
    /// expected to have validated the raw stream with
    /// [`eco_events::check_stream`] first; this constructor re-checks
    /// the same nesting invariants and reports the first violation.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending record.
    pub fn build(records: &[Record]) -> Result<SpanTree, String> {
        let mut tree = SpanTree::default();
        let mut stack: Vec<usize> = Vec::new();
        for r in records {
            match r.kind {
                RecordKind::SpanOpen => {
                    let node = SpanNode {
                        id: r.span,
                        name: r.name.clone().unwrap_or_default(),
                        open_attrs: r.attrs.clone(),
                        close_attrs: Vec::new(),
                        t_open_us: r.t_us,
                        t_close_us: r.t_us,
                        children: Vec::new(),
                        events: Vec::new(),
                    };
                    let idx = tree.nodes.len();
                    tree.nodes.push(node);
                    match stack.last() {
                        Some(&parent) => tree.nodes[parent].children.push(idx),
                        None => tree.roots.push(idx),
                    }
                    stack.push(idx);
                }
                RecordKind::SpanClose => {
                    let idx = stack
                        .pop()
                        .ok_or_else(|| format!("seq {}: close with no open span", r.seq))?;
                    if tree.nodes[idx].id != r.span {
                        return Err(format!(
                            "seq {}: closes span {} but innermost open span is {}",
                            r.seq, r.span, tree.nodes[idx].id
                        ));
                    }
                    tree.nodes[idx].close_attrs = r.attrs.clone();
                    tree.nodes[idx].t_close_us = r.t_us;
                }
                RecordKind::Event => {
                    if r.span == 0 {
                        tree.toplevel.push(r.clone());
                    } else {
                        let idx = stack
                            .iter()
                            .rev()
                            .copied()
                            .find(|&i| tree.nodes[i].id == r.span)
                            .ok_or_else(|| {
                                format!(
                                    "seq {}: event references closed/unknown span {}",
                                    r.seq, r.span
                                )
                            })?;
                        tree.nodes[idx].events.push(r.clone());
                    }
                }
            }
        }
        if let Some(&idx) = stack.last() {
            return Err(format!(
                "span {} ({}) was never closed",
                tree.nodes[idx].id, tree.nodes[idx].name
            ));
        }
        Ok(tree)
    }

    /// `point` events in the subtree rooted at `idx`:
    /// `(total, memo_hits, errors, best_cycles)`.
    pub fn subtree_points(&self, idx: usize) -> (u64, u64, u64, Option<u64>) {
        let node = &self.nodes[idx];
        let mut total = 0;
        let mut hits = 0;
        let mut errors = 0;
        let mut best: Option<u64> = None;
        for e in &node.events {
            if e.name.as_deref() != Some("point") {
                continue;
            }
            total += 1;
            if e.attr_bool("cache_hit") == Some(true) {
                hits += 1;
            }
            if e.attr_str("status") == Some("error") {
                errors += 1;
            }
            if let Some(c) = e.attr_u64("cycles") {
                best = Some(best.map_or(c, |b: u64| b.min(c)));
            }
        }
        for &c in &node.children {
            let (t, h, er, b) = self.subtree_points(c);
            total += t;
            hits += h;
            errors += er;
            best = match (best, b) {
                (Some(x), Some(y)) => Some(x.min(y)),
                (x, y) => x.or(y),
            };
        }
        (total, hits, errors, best)
    }

    /// `certify` events in the subtree rooted at `idx`:
    /// `(certified, rejected)`.
    pub fn subtree_certify(&self, idx: usize) -> (u64, u64) {
        let node = &self.nodes[idx];
        let mut certified = 0;
        let mut rejected = 0;
        for e in &node.events {
            if e.name.as_deref() != Some("certify") {
                continue;
            }
            if e.attr_bool("ok") == Some(true) {
                certified += 1;
            } else {
                rejected += 1;
            }
        }
        for &c in &node.children {
            let (ok, rej) = self.subtree_certify(c);
            certified += ok;
            rejected += rej;
        }
        (certified, rejected)
    }
}

/// Aggregate over all spans sharing one stage name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageRow {
    /// Stage name (`screen`, `shape`, `halve`, `refine`, `prefetch`,
    /// `adjust`).
    pub stage: String,
    /// How many spans carried this name.
    pub spans: u64,
    /// `point` events attributed directly to those spans.
    pub points: u64,
    /// Of those, memo-cache hits.
    pub memo_hits: u64,
    /// Summed wall time of those spans.
    pub wall_us: u64,
}

/// Aggregate over one `variant` span (one fully searched variant).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VariantRow {
    /// Variant name.
    pub name: String,
    /// `point` events in the variant's subtree.
    pub points: u64,
    /// Of those, memo-cache hits.
    pub memo_hits: u64,
    /// Wall time of the variant span.
    pub wall_us: u64,
    /// Best cycles at variant close (absent when infeasible).
    pub cycles: Option<u64>,
    /// Close outcome (`ok` or `infeasible`).
    pub outcome: String,
    /// Candidates statically certified in the variant's subtree.
    pub certified: u64,
    /// Candidates the certifier rejected in the variant's subtree.
    pub rejected: u64,
}

/// One shard of a sharded sweep, from the orchestrator's span-less
/// `shard_done` events (see the sweep pipeline in `eco-bench`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRow {
    /// The shard's plan fingerprint (`0x…` hex).
    pub fingerprint: String,
    /// Figure the shard belongs to.
    pub figure: String,
    /// Variant family (`ECO`, `Native`, …).
    pub family: String,
    /// `tune` or `measure`.
    pub kind: String,
    /// `ok`, `failed` or `skipped`.
    pub status: String,
    /// Wall time of the worker, as the orchestrator saw it.
    pub wall_ms: u64,
    /// Failure detail for `failed` shards (empty otherwise).
    pub error: String,
}

/// One milestone of the winning point's lineage, reconstructed from the
/// selected variant's span subtree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineageNode {
    /// Milestone label (`screen`, `stage TI,TJ`, `shape`, …).
    pub label: String,
    /// Best cycles at that milestone, when the stream recorded one.
    pub cycles: Option<u64>,
    /// Nesting depth in the rendered tree.
    pub depth: usize,
}

/// Everything the profile views need from one tuning run's stream.
#[derive(Debug, Clone, Default)]
pub struct SearchProfile {
    /// Kernel name from the root span.
    pub kernel: String,
    /// Search strategy from the root span.
    pub strategy: String,
    /// Problem size from the root span.
    pub search_n: i64,
    /// Selected variant (root close), if the run succeeded.
    pub selected: Option<String>,
    /// Selected cycles (root close).
    pub selected_cycles: Option<u64>,
    /// Total `point` events.
    pub points: u64,
    /// Memo-cache hits among them.
    pub memo_hits: u64,
    /// Errored points.
    pub errors: u64,
    /// Candidates statically certified (`certify` events with `ok`).
    pub certified: u64,
    /// Candidates the static certifier rejected before measurement.
    pub rejected: u64,
    /// Total wall time of the root span.
    pub wall_us: u64,
    /// Per-stage aggregates, in first-seen order.
    pub stages: Vec<StageRow>,
    /// Per-variant aggregates, in open order.
    pub variants: Vec<VariantRow>,
    /// Screening decisions: `(variant, cycles)` of kept variants.
    pub screened: Vec<(String, u64)>,
    /// Best-point lineage of the selected variant, as a flattened tree.
    pub lineage: Vec<LineageNode>,
    /// Sharded-sweep timeline, in completion order (empty for ordinary
    /// tuning streams).
    pub shards: Vec<ShardRow>,
}

impl SearchProfile {
    /// Memo hit rate over all points.
    pub fn hit_rate(&self) -> f64 {
        if self.points == 0 {
            0.0
        } else {
            self.memo_hits as f64 / self.points as f64
        }
    }

    /// Derives the profile from a reconstructed span tree. Streams
    /// without an `optimize` root (e.g. bare engine runs) produce a
    /// profile with stage/variant tables only.
    pub fn from_tree(tree: &SpanTree) -> SearchProfile {
        let mut p = SearchProfile::default();
        let root = tree
            .roots
            .iter()
            .copied()
            .find(|&i| tree.nodes[i].name == "optimize");
        if let Some(root) = root {
            let node = &tree.nodes[root];
            p.kernel = node
                .open_attr("kernel")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string();
            p.strategy = node
                .open_attr("strategy")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string();
            p.search_n = node
                .open_attr("search_n")
                .and_then(Json::as_i64)
                .unwrap_or(0);
            p.selected = node
                .close_attr("selected")
                .and_then(Json::as_str)
                .map(str::to_string);
            p.selected_cycles = node.close_attr("cycles").and_then(Json::as_u64);
            p.wall_us = node.wall_us();
            let (points, hits, errors, _) = tree.subtree_points(root);
            p.points = points;
            p.memo_hits = hits;
            p.errors = errors;
            let (certified, rejected) = tree.subtree_certify(root);
            p.certified = certified;
            p.rejected = rejected;
        }

        // Stage rows: every span that is not the root or a variant
        // grouping, aggregated by name in first-seen order.
        for (i, node) in tree.nodes.iter().enumerate() {
            match node.name.as_str() {
                "optimize" | "variant" | "stage" => {}
                name => {
                    let (points, hits, _, _) = tree.subtree_points(i);
                    match p.stages.iter_mut().find(|s| s.stage == name) {
                        Some(row) => {
                            row.spans += 1;
                            row.points += points;
                            row.memo_hits += hits;
                            row.wall_us += node.wall_us();
                        }
                        None => p.stages.push(StageRow {
                            stage: name.to_string(),
                            spans: 1,
                            points,
                            memo_hits: hits,
                            wall_us: node.wall_us(),
                        }),
                    }
                }
            }
            if node.name == "screen" {
                for e in &node.events {
                    if e.name.as_deref() == Some("variant_kept") {
                        if let (Some(v), Some(c)) = (e.attr_str("variant"), e.attr_u64("cycles")) {
                            p.screened.push((v.to_string(), c));
                        }
                    }
                }
            }
        }

        // Shard timeline: a sweep orchestrator's stream is span-less
        // `shard_done` events with a `status` attribute (worker streams
        // bracket their work with status-less `shard`/`shard_done`
        // events, which stay out of the table).
        for r in &tree.toplevel {
            if r.name.as_deref() != Some("shard_done") {
                continue;
            }
            let Some(status) = r.attr_str("status") else {
                continue;
            };
            p.shards.push(ShardRow {
                fingerprint: r.attr_str("fingerprint").unwrap_or_default().to_string(),
                figure: r.attr_str("figure").unwrap_or_default().to_string(),
                family: r.attr_str("family").unwrap_or_default().to_string(),
                kind: r.attr_str("kind").unwrap_or_default().to_string(),
                status: status.to_string(),
                wall_ms: r.attr_u64("wall_ms").unwrap_or(0),
                error: r.attr_str("error").unwrap_or_default().to_string(),
            });
        }

        // Variant rows, in open order.
        for (i, node) in tree.nodes.iter().enumerate() {
            if node.name != "variant" {
                continue;
            }
            let (points, hits, _, _) = tree.subtree_points(i);
            let (certified, rejected) = tree.subtree_certify(i);
            let outcome = node
                .close_attr("outcome")
                .and_then(Json::as_str)
                .unwrap_or("ok")
                .to_string();
            p.variants.push(VariantRow {
                name: node
                    .open_attr("variant")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string(),
                points,
                memo_hits: hits,
                wall_us: node.wall_us(),
                cycles: node.close_attr("cycles").and_then(Json::as_u64),
                outcome,
                certified,
                rejected,
            });
        }

        // Best-point lineage: the selected variant's subtree, flattened
        // with stage milestones (cycles at each span close).
        if let Some(selected) = p.selected.clone() {
            if let Some(c) = p.screened.iter().find(|(v, _)| *v == selected) {
                p.lineage.push(LineageNode {
                    label: "screen".to_string(),
                    cycles: Some(c.1),
                    depth: 0,
                });
            }
            if let Some(vi) = tree.nodes.iter().position(|n| {
                n.name == "variant"
                    && n.open_attr("variant").and_then(Json::as_str) == Some(selected.as_str())
            }) {
                fn walk(tree: &SpanTree, idx: usize, depth: usize, out: &mut Vec<LineageNode>) {
                    for &c in &tree.nodes[idx].children {
                        let node = &tree.nodes[c];
                        let label = match node.name.as_str() {
                            "stage" => format!(
                                "stage {}",
                                node.open_attr("params")
                                    .and_then(Json::as_str)
                                    .unwrap_or("?")
                            ),
                            other => other.to_string(),
                        };
                        out.push(LineageNode {
                            label,
                            cycles: node.close_attr("cycles").and_then(Json::as_u64),
                            depth,
                        });
                        walk(tree, c, depth + 1, out);
                    }
                }
                walk(tree, vi, 0, &mut p.lineage);
                p.lineage.push(LineageNode {
                    label: format!("selected {selected}"),
                    cycles: tree.nodes[vi].close_attr("cycles").and_then(Json::as_u64),
                    depth: 0,
                });
            }
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_events::read::read_records;
    use eco_events::{Attrs, EventStream};
    use std::sync::{Arc, Mutex};

    fn synthetic_run() -> String {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let s = EventStream::to_shared_buffer(Arc::clone(&buf));
        let point = |cycles: u64, hit: bool| {
            Attrs::new()
                .str("label", "x")
                .bool("cache_hit", hit)
                .str("status", "ok")
                .uint("cycles", cycles)
        };
        s.event(
            "engine_init",
            None,
            Attrs::new()
                .str("machine", "m")
                .str("machine_fingerprint", "0x01"),
        );
        let root = s.span(
            "optimize",
            None,
            Attrs::new()
                .str("kernel", "mm")
                .int("search_n", 48)
                .str("strategy", "guided"),
        );
        let screen = s.span("screen", Some(root), Attrs::new().uint("variants", 2));
        s.event("point", Some(screen), point(900, false));
        s.event("point", Some(screen), point(800, false));
        s.event(
            "variant_kept",
            Some(screen),
            Attrs::new().str("variant", "v1").uint("cycles", 800),
        );
        s.close_span(screen, Attrs::new().uint("kept", 1));
        let v = s.span("variant", Some(root), Attrs::new().str("variant", "v1"));
        let st = s.span("stage", Some(v), Attrs::new().str("params", "TI,TJ"));
        let sh = s.span("shape", Some(st), Attrs::new());
        s.event("point", Some(sh), point(700, false));
        s.event("point", Some(sh), point(650, true));
        s.close_span(sh, Attrs::new().uint("cycles", 650));
        s.close_span(st, Attrs::new().uint("cycles", 650));
        let adj = s.span("adjust", Some(v), Attrs::new());
        s.event("point", Some(adj), point(640, false));
        s.close_span(adj, Attrs::new().uint("cycles", 640));
        s.close_span(v, Attrs::new().uint("cycles", 640));
        s.close_span(
            root,
            Attrs::new()
                .uint("points", 5)
                .str("selected", "v1")
                .uint("cycles", 640),
        );
        s.flush();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        text
    }

    #[test]
    fn tree_and_profile_reconstruct_the_run() {
        let text = synthetic_run();
        let records = read_records(text.as_bytes(), 4096).expect("reads");
        let tree = SpanTree::build(&records).expect("builds");
        assert_eq!(tree.roots.len(), 1);
        assert_eq!(tree.toplevel.len(), 1, "engine_init is span-less");
        let p = SearchProfile::from_tree(&tree);
        assert_eq!(p.kernel, "mm");
        assert_eq!(p.search_n, 48);
        assert_eq!(p.selected.as_deref(), Some("v1"));
        assert_eq!(p.selected_cycles, Some(640));
        assert_eq!(p.points, 5);
        assert_eq!(p.memo_hits, 1);
        assert!((p.hit_rate() - 0.2).abs() < 1e-9);
        assert_eq!(p.screened, vec![("v1".to_string(), 800)]);
        let stage_names: Vec<&str> = p.stages.iter().map(|s| s.stage.as_str()).collect();
        assert_eq!(stage_names, vec!["screen", "shape", "adjust"]);
        assert_eq!(p.variants.len(), 1);
        assert_eq!(p.variants[0].points, 3);
        assert_eq!(p.variants[0].cycles, Some(640));
        let labels: Vec<&str> = p.lineage.iter().map(|l| l.label.as_str()).collect();
        assert_eq!(
            labels,
            vec!["screen", "stage TI,TJ", "shape", "adjust", "selected v1"]
        );
        assert_eq!(p.lineage.last().unwrap().cycles, Some(640));
    }

    #[test]
    fn shard_timeline_collects_orchestrator_events_only() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let s = EventStream::to_shared_buffer(Arc::clone(&buf));
        s.event(
            "sweep_begin",
            None,
            Attrs::new().str("figure", "fig5a").uint("shards", 2),
        );
        // Worker-style bracket: no `status` attribute, must stay out.
        s.event(
            "shard_done",
            None,
            Attrs::new().str("fingerprint", "0xdead").bool("ok", true),
        );
        s.event(
            "shard_done",
            None,
            Attrs::new()
                .str("fingerprint", "0x0000000000000001")
                .str("figure", "fig5a")
                .str("family", "ECO")
                .str("kind", "tune")
                .str("status", "ok")
                .uint("wall_ms", 1200),
        );
        s.event(
            "shard_done",
            None,
            Attrs::new()
                .str("fingerprint", "0x0000000000000002")
                .str("figure", "fig5a")
                .str("family", "Native")
                .str("kind", "measure")
                .str("status", "skipped")
                .uint("wall_ms", 0),
        );
        s.flush();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let records = read_records(text.as_bytes(), 4096).expect("reads");
        let tree = SpanTree::build(&records).expect("builds");
        let p = SearchProfile::from_tree(&tree);
        assert_eq!(p.shards.len(), 2, "status-less shard_done is filtered");
        assert_eq!(p.shards[0].family, "ECO");
        assert_eq!(p.shards[0].kind, "tune");
        assert_eq!(p.shards[0].status, "ok");
        assert_eq!(p.shards[0].wall_ms, 1200);
        assert_eq!(p.shards[1].status, "skipped");
    }

    #[test]
    fn malformed_nesting_is_rejected() {
        let text = synthetic_run();
        let mut records = read_records(text.as_bytes(), 4096).expect("reads");
        // Drop a close record: the tree must refuse.
        records.retain(|r| !(r.kind == RecordKind::SpanClose && r.span == 2));
        let err = SpanTree::build(&records).expect_err("unclosed span");
        assert!(
            err.contains("closes span") || err.contains("never closed"),
            "{err}"
        );
    }
}
