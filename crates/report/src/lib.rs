//! Trace analysis and reporting for ECO search runs.
//!
//! The search emits a JSONL event stream (`--events`); this crate turns
//! that stream back into something a person can reason about:
//!
//! - [`profile`] — reconstructs the span tree and derives the search
//!   profile: per-stage and per-variant wall time, point counts, memo
//!   hit rates, and the best-point lineage.
//! - [`attribution`] — re-measures each searched variant with
//!   per-array attribution and joins the simulator's counters against
//!   the static footprint model, level by level, flagging where the
//!   model misled the search.
//! - [`render`] — deterministic ASCII and CSV renderings.
//! - [`html`] — a self-contained static HTML report with inline SVG
//!   (stage timeline, search-landscape heatmap, best-so-far
//!   trajectory).
//! - [`trajectory`] — the benchmark-trajectory regression gate behind
//!   `eco report --compare`.
//!
//! The entry point is [`analyze_stream`]: validate with
//! [`eco_events::check_stream`], parse with
//! [`eco_events::read::read_records`], build the tree and profile, and
//! optionally attribute. Every rendering of the resulting [`RunReport`]
//! is byte-deterministic.

pub mod attribution;
pub mod html;
pub mod profile;
pub mod render;
pub mod trajectory;

pub use attribution::{
    attribute_run, resolve_machine, stream_machine_fingerprint, AttributionOptions, AttributionRow,
    LevelCell, VariantAttribution,
};
pub use html::render_html;
pub use profile::{LineageNode, SearchProfile, SpanNode, SpanTree, StageRow, VariantRow};
pub use render::{
    render_attribution_ascii, render_attribution_csv, render_profile_ascii, render_profile_csv,
};
pub use trajectory::{
    compare_trajectories, render_comparison, render_comparison_html, Comparison, MetricDelta,
};

use eco_events::read::read_records;
use eco_events::StreamSummary;

/// How [`analyze_stream`] reads and enriches a stream.
#[derive(Debug, Clone)]
pub struct ReportOptions {
    /// Read buffer size in bytes for the streaming parser (the report
    /// must be identical for any value; the determinism test asserts
    /// this).
    pub buf_size: usize,
    /// Whether to run the attributed re-measurement pass. Off by
    /// default: it needs the kernel and machine to be resolvable.
    pub attribute: bool,
    /// Context for the attribution pass.
    pub attribution: AttributionOptions,
}

impl Default for ReportOptions {
    fn default() -> Self {
        ReportOptions {
            buf_size: 64 * 1024,
            attribute: false,
            attribution: AttributionOptions::default(),
        }
    }
}

/// Everything derived from one event stream.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Where the stream came from (file name or label).
    pub source: String,
    /// Number of records in the stream.
    pub records: usize,
    /// Invariant-checker summary of the stream.
    pub summary: StreamSummary,
    /// The reconstructed span forest.
    pub tree: SpanTree,
    /// The derived search profile.
    pub profile: SearchProfile,
    /// Per-variant attribution tables (empty unless
    /// [`ReportOptions::attribute`] was set and succeeded).
    pub attribution: Vec<VariantAttribution>,
    /// Why attribution was skipped, when it was requested but failed
    /// (e.g. a synthetic stream with no resolvable kernel).
    pub attribution_error: Option<String>,
}

/// Analyzes one JSONL event stream into a [`RunReport`].
///
/// # Errors
///
/// Fails when the stream violates the emitter invariants
/// ([`eco_events::check_stream`]), cannot be parsed into records, or
/// has malformed span nesting. A failed attribution pass is recorded in
/// [`RunReport::attribution_error`] rather than failing the report.
pub fn analyze_stream(text: &str, source: &str, opts: &ReportOptions) -> Result<RunReport, String> {
    let summary = eco_events::check_stream(text).map_err(|e| format!("{source}: {e}"))?;
    let records =
        read_records(text.as_bytes(), opts.buf_size).map_err(|e| format!("{source}: {e}"))?;
    let tree = SpanTree::build(&records).map_err(|e| format!("{source}: {e}"))?;
    let profile = SearchProfile::from_tree(&tree);
    let (attribution, attribution_error) = if opts.attribute {
        match attribute_run(&profile, &tree.toplevel, &opts.attribution) {
            Ok(tables) => (tables, None),
            Err(e) => (Vec::new(), Some(e)),
        }
    } else {
        (Vec::new(), None)
    };
    Ok(RunReport {
        source: source.to_string(),
        records: records.len(),
        summary,
        tree,
        profile,
        attribution,
        attribution_error,
    })
}
