//! Deterministic ASCII and CSV renderings of the report views.
//!
//! Everything here is pure formatting over already-computed structures:
//! the same [`RunReport`] always renders the same
//! bytes, which the determinism tests and the golden fixture assert.

use crate::attribution::VariantAttribution;
use crate::profile::SearchProfile;
use crate::RunReport;
use std::fmt::Write as _;

fn ms(us: u64) -> String {
    format!("{:.1}", us as f64 / 1000.0)
}

fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// The `cert` cell: `certified/rejected` counts of the static
/// certifier, or `-` when the run did not certify.
fn cert_cell(certified: u64, rejected: u64) -> String {
    if certified + rejected == 0 {
        "-".to_string()
    } else {
        format!("{certified}/{rejected}")
    }
}

/// Renders one column-aligned table: `widths` are computed from the
/// rows, every cell is left-padded to its column.
fn table(out: &mut String, indent: &str, rows: &[Vec<String>]) {
    let cols = rows.iter().map(Vec::len).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    for row in rows {
        let mut line = String::new();
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            let _ = write!(line, "{cell:<width$}", width = widths[i]);
        }
        let _ = writeln!(out, "{indent}{}", line.trim_end());
    }
}

/// The search profile as human-readable ASCII (header, stage table,
/// variant table, lineage tree).
pub fn render_profile_ascii(report: &RunReport) -> String {
    let p = &report.profile;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "ECO search report — kernel {}, strategy {}, N {}",
        p.kernel, p.strategy, p.search_n
    );
    let _ = writeln!(out, "source: {}", report.source);
    let _ = writeln!(
        out,
        "records {}, points {}, memo hits {} ({}), errors {}, wall {} ms",
        report.records,
        p.points,
        p.memo_hits,
        pct(p.hit_rate()),
        p.errors,
        ms(p.wall_us)
    );
    if p.certified + p.rejected > 0 {
        let _ = writeln!(
            out,
            "certified: {} candidates statically proven, {} rejected before measurement",
            p.certified, p.rejected
        );
    }
    match (&p.selected, p.selected_cycles) {
        (Some(v), Some(c)) => {
            let _ = writeln!(out, "selected: {v} at {c} cycles");
        }
        _ => {
            let _ = writeln!(out, "selected: (none)");
        }
    }

    let _ = writeln!(out, "\nStage profile:");
    let mut rows = vec![vec![
        "stage".to_string(),
        "spans".to_string(),
        "points".to_string(),
        "memo".to_string(),
        "wall_ms".to_string(),
    ]];
    for s in &p.stages {
        rows.push(vec![
            s.stage.clone(),
            s.spans.to_string(),
            s.points.to_string(),
            s.memo_hits.to_string(),
            ms(s.wall_us),
        ]);
    }
    table(&mut out, "  ", &rows);

    let _ = writeln!(out, "\nVariant profile:");
    let mut rows = vec![vec![
        "variant".to_string(),
        "points".to_string(),
        "memo".to_string(),
        "cert".to_string(),
        "cycles".to_string(),
        "outcome".to_string(),
        "wall_ms".to_string(),
    ]];
    for v in &p.variants {
        rows.push(vec![
            v.name.clone(),
            v.points.to_string(),
            v.memo_hits.to_string(),
            cert_cell(v.certified, v.rejected),
            v.cycles.map_or_else(|| "-".to_string(), |c| c.to_string()),
            v.outcome.clone(),
            ms(v.wall_us),
        ]);
    }
    table(&mut out, "  ", &rows);

    if !p.shards.is_empty() {
        let _ = writeln!(out, "\nShard timeline:");
        // The error column appears only when some shard failed with a
        // recorded error, so all-ok timelines keep their exact shape.
        let with_error = p.shards.iter().any(|s| !s.error.is_empty());
        let mut header = vec![
            "shard".to_string(),
            "figure".to_string(),
            "family".to_string(),
            "kind".to_string(),
            "status".to_string(),
            "wall_ms".to_string(),
        ];
        if with_error {
            header.push("error".to_string());
        }
        let mut rows = vec![header];
        for s in &p.shards {
            let mut row = vec![
                s.fingerprint.clone(),
                s.figure.clone(),
                s.family.clone(),
                s.kind.clone(),
                s.status.clone(),
                s.wall_ms.to_string(),
            ];
            if with_error {
                row.push(s.error.clone());
            }
            rows.push(row);
        }
        table(&mut out, "  ", &rows);
    }

    if !p.lineage.is_empty() {
        let _ = writeln!(out, "\nBest-point lineage:");
        for (i, node) in p.lineage.iter().enumerate() {
            let branch = if i + 1 == p.lineage.len() {
                "└─"
            } else {
                "├─"
            };
            let pad = "│  ".repeat(node.depth);
            let cycles = node
                .cycles
                .map_or_else(String::new, |c| format!("  {c} cycles"));
            let _ = writeln!(out, "  {pad}{branch} {}{cycles}", node.label);
        }
    }
    out
}

/// The profile as CSV: one `section` column discriminates stage rows,
/// variant rows and lineage milestones.
pub fn render_profile_csv(profile: &SearchProfile) -> String {
    let mut out = String::from(
        "section,name,spans,points,memo_hits,wall_us,cycles,outcome,certified,rejected\n",
    );
    for s in &profile.stages {
        let _ = writeln!(
            out,
            "stage,{},{},{},{},{},,,,",
            csv_escape(&s.stage),
            s.spans,
            s.points,
            s.memo_hits,
            s.wall_us
        );
    }
    for v in &profile.variants {
        let _ = writeln!(
            out,
            "variant,{},1,{},{},{},{},{},{},{}",
            csv_escape(&v.name),
            v.points,
            v.memo_hits,
            v.wall_us,
            v.cycles.map_or_else(String::new, |c| c.to_string()),
            csv_escape(&v.outcome),
            v.certified,
            v.rejected
        );
    }
    for l in &profile.lineage {
        let _ = writeln!(
            out,
            "lineage,{},,,,,{},,,",
            csv_escape(&l.label),
            l.cycles.map_or_else(String::new, |c| c.to_string())
        );
    }
    // Shard rows reuse the shared columns: `name` is the shard's
    // figure/family/kind path, `outcome` its status, `wall_us` the
    // orchestrator-observed wall time.
    for s in &profile.shards {
        let _ = writeln!(
            out,
            "shard,{},,,,{},,{},,",
            csv_escape(&format!("{}/{}/{}", s.figure, s.family, s.kind)),
            s.wall_ms * 1000,
            csv_escape(&s.status)
        );
    }
    out
}

fn csv_escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// The attribution tables as ASCII: per variant, one row per array and
/// one model/sim column pair per level.
pub fn render_attribution_ascii(tables: &[VariantAttribution]) -> String {
    let mut out = String::new();
    for t in tables {
        let params: Vec<String> = t.params.iter().map(|(k, v)| format!("{k}={v}")).collect();
        let _ = writeln!(
            out,
            "\nAttribution — {} ({}), N {}, {} cycles\n  params: {}",
            t.variant,
            t.point,
            t.n,
            t.cycles,
            params.join(" ")
        );
        let mut header = vec![
            "array".to_string(),
            "refs(mod)".to_string(),
            "refs(sim)".to_string(),
            "ff%".to_string(),
        ];
        if let Some(first) = t.rows.first() {
            for cell in &first.levels {
                header.push(format!("{}(mod)", cell.level));
                header.push(format!("{}(sim)", cell.level));
            }
        }
        header.push("flags".to_string());
        let mut rows = vec![header];
        for r in &t.rows {
            let mut row = vec![
                r.array.clone(),
                format!("{:.0}", r.refs_model),
                r.refs_sim.to_string(),
                format!(
                    "{:.1}",
                    100.0 * r.ff_sim as f64 / (r.refs_sim.max(1)) as f64
                ),
            ];
            for cell in &r.levels {
                row.push(format!("{:.0}", cell.model));
                row.push(cell.simulated.to_string());
            }
            row.push(r.flags.join("; "));
            rows.push(row);
        }
        table(&mut out, "  ", &rows);
    }
    out
}

/// The attribution tables as long-format CSV
/// (`variant,point,array,level,model,simulated,ff,flag`). The `ff`
/// column is only meaningful on the `refs` row: of the simulated
/// accesses, how many the simulator fast-forwarded (0 elsewhere).
pub fn render_attribution_csv(tables: &[VariantAttribution]) -> String {
    let mut out = String::from("variant,point,array,level,model,simulated,ff,flags\n");
    for t in tables {
        for r in &t.rows {
            let flags = csv_escape(&r.flags.join("; "));
            let _ = writeln!(
                out,
                "{},{},{},refs,{:.0},{},{},{}",
                csv_escape(&t.variant),
                t.point,
                csv_escape(&r.array),
                r.refs_model,
                r.refs_sim,
                r.ff_sim,
                flags
            );
            for cell in &r.levels {
                let _ = writeln!(
                    out,
                    "{},{},{},{},{:.0},{},0,{}",
                    csv_escape(&t.variant),
                    t.point,
                    csv_escape(&r.array),
                    cell.level,
                    cell.model,
                    cell.simulated,
                    flags
                );
            }
        }
    }
    out
}
