//! Benchmark-trajectory comparison: the regression gate behind
//! `eco report --compare OLD NEW`.
//!
//! A trajectory file is the JSON written by `repro bench --bench-out`:
//! a `smoke` section (points/sec of the evaluation engine) and a
//! `figures` section (wall time, point count, and manifest fingerprint
//! per reproduced figure). Comparison walks both JSON trees, pairs
//! numeric leaves by dotted path, and classifies each delta by the
//! metric's direction:
//!
//! - paths ending in `points_per_sec` are higher-is-better,
//! - paths ending in `wall_secs` or `secs` are lower-is-better,
//! - `manifest_fingerprint` strings must match exactly (a mismatch is
//!   a note, not a regression — it means the search changed, which the
//!   golden-results gate judges, not this one),
//! - metrics present on only one side are notes, so a smoke-only CI
//!   run can be compared against a fully populated committed file.

use eco_events::Json;
use std::fmt::Write as _;

/// One paired metric and how it moved.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Dotted path of the metric (`smoke.points_per_sec`, …).
    pub path: String,
    /// Old (committed) value.
    pub old: f64,
    /// New (freshly measured) value.
    pub new: f64,
    /// Signed change in percent, positive = improvement for this
    /// metric's direction.
    pub gain_pct: f64,
}

/// Result of comparing two trajectory files.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Regression threshold in percent that was applied.
    pub threshold_pct: f64,
    /// Metrics that regressed past the threshold (gate fails when
    /// non-empty).
    pub regressions: Vec<MetricDelta>,
    /// All paired directional metrics, in path order.
    pub deltas: Vec<MetricDelta>,
    /// Non-gating observations (one-sided metrics, fingerprint or
    /// count changes).
    pub notes: Vec<String>,
}

impl Comparison {
    /// Whether the gate passes (no regression beyond the threshold).
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Metric direction, inferred from the path suffix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    HigherBetter,
    LowerBetter,
    None,
}

fn direction(path: &str) -> Direction {
    let leaf = path.rsplit('.').next().unwrap_or(path);
    match leaf {
        "points_per_sec" => Direction::HigherBetter,
        "wall_secs" | "secs" => Direction::LowerBetter,
        _ => Direction::None,
    }
}

fn collect(
    json: &Json,
    prefix: &str,
    nums: &mut Vec<(String, f64)>,
    strs: &mut Vec<(String, String)>,
) {
    match json {
        Json::Obj(fields) => {
            for (k, v) in fields {
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                collect(v, &path, nums, strs);
            }
        }
        Json::Str(s) => strs.push((prefix.to_string(), s.clone())),
        other => {
            if let Some(x) = other.as_f64() {
                nums.push((prefix.to_string(), x));
            }
        }
    }
}

/// Compares two parsed trajectory files; `threshold_pct` is the
/// allowed regression in percent (e.g. `50.0`).
pub fn compare_trajectories(old: &Json, new: &Json, threshold_pct: f64) -> Comparison {
    let (mut old_nums, mut old_strs) = (Vec::new(), Vec::new());
    let (mut new_nums, mut new_strs) = (Vec::new(), Vec::new());
    collect(old, "", &mut old_nums, &mut old_strs);
    collect(new, "", &mut new_nums, &mut new_strs);

    let mut deltas = Vec::new();
    let mut regressions = Vec::new();
    let mut notes = Vec::new();

    for (path, old_v) in &old_nums {
        let Some((_, new_v)) = new_nums.iter().find(|(p, _)| p == path) else {
            if direction(path) != Direction::None {
                notes.push(format!("{path}: only in old file ({old_v})"));
            }
            continue;
        };
        match direction(path) {
            Direction::None => {
                if (old_v - new_v).abs() > 1e-9 {
                    notes.push(format!("{path}: {old_v} -> {new_v}"));
                }
            }
            dir => {
                if *old_v <= 0.0 {
                    notes.push(format!("{path}: old value {old_v} not comparable"));
                    continue;
                }
                let raw_pct = (new_v - old_v) / old_v * 100.0;
                let gain_pct = match dir {
                    Direction::HigherBetter => raw_pct,
                    Direction::LowerBetter => -raw_pct,
                    Direction::None => unreachable!(),
                };
                let delta = MetricDelta {
                    path: path.clone(),
                    old: *old_v,
                    new: *new_v,
                    gain_pct,
                };
                if gain_pct < -threshold_pct {
                    regressions.push(delta.clone());
                }
                deltas.push(delta);
            }
        }
    }
    for (path, new_v) in &new_nums {
        if direction(path) != Direction::None && !old_nums.iter().any(|(p, _)| p == path) {
            notes.push(format!("{path}: only in new file ({new_v})"));
        }
    }
    for (path, old_s) in &old_strs {
        if let Some((_, new_s)) = new_strs.iter().find(|(p, _)| p == path) {
            if old_s != new_s {
                notes.push(format!("{path}: {old_s} -> {new_s}"));
            }
        }
    }

    deltas.sort_by(|a, b| a.path.cmp(&b.path));
    regressions.sort_by(|a, b| a.path.cmp(&b.path));
    notes.sort();
    Comparison {
        threshold_pct,
        regressions,
        deltas,
        notes,
    }
}

/// Renders a comparison as deterministic ASCII.
pub fn render_comparison(cmp: &Comparison) -> String {
    let mut out = String::new();
    let verdict = if cmp.passed() { "PASS" } else { "FAIL" };
    let _ = writeln!(
        out,
        "Trajectory comparison ({verdict}, threshold {:.0}%)",
        cmp.threshold_pct
    );
    if !cmp.deltas.is_empty() {
        let _ = writeln!(out, "\nMetrics:");
        for d in &cmp.deltas {
            let mark = if cmp.regressions.contains(d) {
                "  REGRESSED"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  {}: {:.3} -> {:.3} ({:+.1}%){mark}",
                d.path, d.old, d.new, d.gain_pct
            );
        }
    }
    if !cmp.notes.is_empty() {
        let _ = writeln!(out, "\nNotes:");
        for n in &cmp.notes {
            let _ = writeln!(out, "  {n}");
        }
    }
    out
}

/// Renders a comparison as a standalone HTML page (the CI artifact of
/// the trajectory gate). Deterministic for a given comparison.
pub fn render_comparison_html(cmp: &Comparison) -> String {
    fn esc(s: &str) -> String {
        s.replace('&', "&amp;")
            .replace('<', "&lt;")
            .replace('>', "&gt;")
    }
    let verdict = if cmp.passed() { "PASS" } else { "FAIL" };
    let color = if cmp.passed() { "#2e7d32" } else { "#c62828" };
    let mut s = String::from(
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\
         <title>Trajectory comparison</title>\n<style>\n\
         body{font-family:sans-serif;margin:2em;max-width:60em}\n\
         table{border-collapse:collapse}\n\
         th,td{border:1px solid #ccc;padding:0.3em 0.7em;text-align:right}\n\
         th:first-child,td:first-child{text-align:left}\n\
         tr.regressed{background:#ffebee}\n\
         </style></head><body>\n",
    );
    let _ = writeln!(
        s,
        "<h2>Trajectory comparison: <span style=\"color:{color}\">{verdict}</span> \
         (threshold {:.0}%)</h2>",
        cmp.threshold_pct
    );
    if !cmp.deltas.is_empty() {
        s.push_str("<table>\n<tr><th>metric</th><th>old</th><th>new</th><th>gain</th></tr>\n");
        for d in &cmp.deltas {
            let class = if cmp.regressions.contains(d) {
                " class=\"regressed\""
            } else {
                ""
            };
            let _ = writeln!(
                s,
                "<tr{class}><td>{}</td><td>{:.3}</td><td>{:.3}</td><td>{:+.1}%</td></tr>",
                esc(&d.path),
                d.old,
                d.new,
                d.gain_pct
            );
        }
        s.push_str("</table>\n");
    }
    if !cmp.notes.is_empty() {
        s.push_str("<h3>Notes</h3>\n<ul>\n");
        for n in &cmp.notes {
            let _ = writeln!(s, "<li>{}</li>", esc(n));
        }
        s.push_str("</ul>\n");
    }
    s.push_str("</body></html>\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj(pps: f64, wall: f64, fp: &str) -> Json {
        Json::obj()
            .field("bench_version", Json::UInt(1))
            .field(
                "smoke",
                Json::obj()
                    .field("points", Json::UInt(64))
                    .field("secs", Json::Float(0.5))
                    .field("points_per_sec", Json::Float(pps)),
            )
            .field(
                "figures",
                Json::obj().field(
                    "fig6",
                    Json::obj()
                        .field("wall_secs", Json::Float(wall))
                        .field("points_per_sec", Json::Float(pps * 0.8))
                        .field("manifest_fingerprint", Json::str(fp)),
                ),
            )
    }

    #[test]
    fn equal_trajectories_pass() {
        let a = traj(1000.0, 2.0, "0xabc");
        let cmp = compare_trajectories(&a, &a, 25.0);
        assert!(cmp.passed());
        assert!(cmp.notes.is_empty());
        assert_eq!(cmp.deltas.len(), 4);
    }

    #[test]
    fn throughput_collapse_fails_the_gate() {
        let old = traj(1000.0, 2.0, "0xabc");
        let new = traj(400.0, 2.0, "0xabc");
        let cmp = compare_trajectories(&old, &new, 25.0);
        assert!(!cmp.passed());
        assert!(cmp
            .regressions
            .iter()
            .any(|d| d.path == "smoke.points_per_sec"));
        let text = render_comparison(&cmp);
        assert!(text.starts_with("Trajectory comparison (FAIL"));
        assert!(text.contains("REGRESSED"));
    }

    #[test]
    fn wall_time_direction_is_lower_better() {
        let old = traj(1000.0, 2.0, "0xabc");
        let fast = traj(1000.0, 1.0, "0xabc");
        let slow = traj(1000.0, 4.0, "0xabc");
        assert!(compare_trajectories(&old, &fast, 25.0).passed());
        let cmp = compare_trajectories(&old, &slow, 25.0);
        assert_eq!(cmp.regressions.len(), 1);
        assert_eq!(cmp.regressions[0].path, "figures.fig6.wall_secs");
    }

    #[test]
    fn html_rendering_marks_regressions_and_escapes() {
        let old = traj(1000.0, 2.0, "0xabc");
        let new = traj(400.0, 2.0, "0x<b>");
        let cmp = compare_trajectories(&old, &new, 25.0);
        let html = render_comparison_html(&cmp);
        assert!(html.contains("FAIL"));
        assert!(html.contains("class=\"regressed\""));
        assert!(html.contains("0x&lt;b&gt;"), "notes must be HTML-escaped");
        assert!(!html.contains("0x<b>"));
        let ok = compare_trajectories(&old, &old, 25.0);
        assert!(render_comparison_html(&ok).contains("PASS"));
    }

    #[test]
    fn one_sided_metrics_and_fingerprints_are_notes() {
        let old = traj(1000.0, 2.0, "0xabc");
        let mut new = traj(1000.0, 2.0, "0xdef");
        // Drop the figures section entirely: smoke-only CI run.
        if let Json::Obj(fields) = &mut new {
            fields.retain(|(k, _)| k != "figures");
        }
        let cmp = compare_trajectories(&old, &new, 25.0);
        assert!(cmp.passed(), "one-sided metrics must not gate");
        assert!(cmp.notes.iter().any(|n| n.contains("only in old file")));

        let renamed = traj(1000.0, 2.0, "0xdef");
        let cmp = compare_trajectories(&old, &renamed, 25.0);
        assert!(cmp.passed());
        assert!(cmp
            .notes
            .iter()
            .any(|n| n.contains("manifest_fingerprint") && n.contains("0xdef")));
    }
}
