//! Reuse analysis in the style of Wolf & Lam, plus the profitability
//! functions of the paper's Figure 3 (`MostProfitableLoops`,
//! `MostProfitableRefs`).
//!
//! For a reference `r` and loop `l`, the amount of reuse `R_l(r)` is
//! `N_l` for temporal reuse, the cache line size for spatial reuse, and
//! 1 otherwise (§3.1.1). Because every loop of our kernels has the same
//! trip count, comparing loops by *how many accesses per iteration* their
//! temporal reuse saves is equivalent to comparing total reuse — and it
//! is what makes the algorithm pick `K` (which carries the reuse of the
//! read-*and*-written `C[I,J]`) as the register loop for Matrix Multiply,
//! exactly as in the paper's Table 4.

use crate::nest::{NestInfo, RefInfo};
use eco_ir::VarId;

/// The kind of reuse a reference has with respect to one loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReuseKind {
    /// No reuse carried by the loop.
    None,
    /// Same element re-accessed across iterations (subscripts do not use
    /// the loop variable).
    SelfTemporal,
    /// Same cache line re-accessed (loop variable strides the contiguous
    /// dimension with coefficient 1 and appears nowhere else).
    SelfSpatial,
    /// The element was accessed a constant number of iterations earlier
    /// by another reference of the same uniformly-generated group.
    GroupTemporal,
}

/// Classifies the reuse reference `r` has in loop `v`.
///
/// Group-temporal takes precedence over self-spatial; self-temporal over
/// both.
pub fn reuse_kind(nest: &NestInfo, r: usize, v: VarId) -> ReuseKind {
    let rf = &nest.refs[r];
    if !rf.uses(v) {
        return ReuseKind::SelfTemporal;
    }
    if group_source(nest, r, v).is_some() {
        return ReuseKind::GroupTemporal;
    }
    if self_spatial(rf, v) {
        return ReuseKind::SelfSpatial;
    }
    ReuseKind::None
}

/// True if `r` has self-spatial reuse along `v`: `v` appears only in the
/// contiguous (leftmost) subscript, with coefficient 1.
pub fn self_spatial(r: &RefInfo, v: VarId) -> bool {
    if r.idx.is_empty() || r.coeff(0, v) != 1 {
        return false;
    }
    r.idx[1..].iter().all(|e| !e.uses(v))
}

/// If `r`'s data was touched earlier (along loop `v`) by another member
/// of its group, returns `(source reference, iteration distance)`.
///
/// `src` touches the same element `t > 0` iterations of `v` before `r`
/// when, for every dimension `d`:
/// `const(src)_d - const(r)_d = t * coeff_d(v)`.
pub fn group_source(nest: &NestInfo, r: usize, v: VarId) -> Option<(usize, i64)> {
    let rf = &nest.refs[r];
    let mut best: Option<(usize, i64)> = None;
    for &s in nest.group_of(r) {
        if s == r {
            continue;
        }
        let sf = &nest.refs[s];
        if let Some(t) = uniform_distance(rf, sf, v) {
            if t > 0 && best.is_none_or(|(_, bt)| t < bt) {
                best = Some((s, t));
            }
        }
    }
    best
}

/// The iteration distance `t` along `v` such that `src` at iteration
/// `i` touches what `r` touches at iteration `i + t`, for two
/// uniformly-generated references. `None` if no integer distance exists.
pub fn uniform_distance(r: &RefInfo, src: &RefInfo, v: VarId) -> Option<i64> {
    let mut t: Option<i64> = None;
    for d in 0..r.idx.len() {
        let a = r.coeff(d, v);
        let delta = src.idx[d].constant_part() - r.idx[d].constant_part();
        if a == 0 {
            if delta != 0 {
                return None;
            }
        } else {
            if delta % a != 0 {
                return None;
            }
            let td = delta / a;
            match t {
                None => t = Some(td),
                Some(prev) if prev != td => return None,
                _ => {}
            }
        }
    }
    t
}

/// Accesses per innermost iteration that exploiting loop `v`'s temporal
/// reuse would save, over the references in `candidates`.
///
/// Self-temporal references save all their accesses (a read-and-written
/// accumulator like `C[I,J]` saves a load *and* a store per iteration);
/// group-temporal followers save their loads.
pub fn temporal_savings(nest: &NestInfo, v: VarId, candidates: &[usize]) -> u32 {
    let mut total = 0;
    for &r in candidates {
        let rf = &nest.refs[r];
        if !rf.uses(v) {
            total += rf.accesses();
        } else if group_source(nest, r, v).is_some_and(|(src, _)| candidates.contains(&src)) {
            total += rf.reads;
        }
    }
    total
}

/// Accesses per iteration whose *spatial* reuse loop `v` carries, used
/// as the paper's tie-breaker.
pub fn spatial_savings(nest: &NestInfo, v: VarId, candidates: &[usize]) -> u32 {
    candidates
        .iter()
        .map(|&r| {
            let rf = &nest.refs[r];
            if rf.uses(v) && self_spatial(rf, v) {
                rf.accesses()
            } else {
                0
            }
        })
        .sum()
}

/// The paper's `MostProfitableLoops(Loops, Refs)`: among `candidates`,
/// the loops carrying the most unexploited temporal reuse over
/// `unmapped` references. Ties return multiple loops — one variant each.
///
/// §3.1.1 mentions spatial reuse as a tie-breaker, but the paper's own
/// outputs show temporal ties surviving to produce variants (the I/J tie
/// at Matrix Multiply's L1 level yields both v1 and v2 of Table 4, and
/// "for Jacobi our approach generates variants with different loop
/// orders, since all loops carry temporal reuse"). We therefore keep all
/// temporally-tied loops — letting the empirical phase decide is the
/// system's philosophy — and expose [`spatial_savings`] as a ranking
/// hint for callers that want it.
///
/// If no unmapped reference has reuse, falls back to considering all
/// references (the paper: "if no such references exist, the algorithm
/// may select a reference that has already been mapped").
pub fn most_profitable_loops(
    nest: &NestInfo,
    candidates: &[VarId],
    unmapped: &[usize],
    all_refs: &[usize],
) -> Vec<VarId> {
    let pick = |refs: &[usize]| -> Vec<VarId> {
        let temporal: Vec<u32> = candidates
            .iter()
            .map(|&v| temporal_savings(nest, v, refs))
            .collect();
        let best = temporal.iter().copied().max().unwrap_or(0);
        if best == 0 {
            return Vec::new();
        }
        candidates
            .iter()
            .zip(&temporal)
            .filter(|&(_, &t)| t == best)
            .map(|(&v, _)| v)
            .collect()
    };
    let first = pick(unmapped);
    if !first.is_empty() {
        first
    } else {
        pick(all_refs)
    }
}

/// The paper's `MostProfitableRefs(l, Refs)`: the references among
/// `candidates` whose temporal reuse loop `l` carries (self-temporal, or
/// group-temporal from a source also in `candidates`).
pub fn most_profitable_refs(nest: &NestInfo, l: VarId, candidates: &[usize]) -> Vec<usize> {
    let mut out = Vec::new();
    for &r in candidates {
        let rf = &nest.refs[r];
        let has = !rf.uses(l)
            || group_source(nest, r, l).is_some_and(|(src, _)| candidates.contains(&src));
        if has {
            out.push(r);
        }
    }
    // Group-temporal followers pull their whole group in: the retained
    // data tile must include the sources.
    let mut closed = out.clone();
    for &r in &out {
        if nest.refs[r].uses(l) {
            for &s in nest.group_of(r) {
                if candidates.contains(&s) && !closed.contains(&s) {
                    closed.push(s);
                }
            }
        }
    }
    closed.sort_unstable();
    closed
}
