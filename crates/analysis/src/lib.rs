//! Compiler analyses for the ECO reproduction: the models that drive
//! Phase 1 of the paper (variant derivation) and constrain Phase 2 (the
//! guided empirical search).
//!
//! * [`NestInfo`] — extraction of the perfect nest, distinct references,
//!   and uniformly-generated reuse groups;
//! * [`reuse`] — Wolf–Lam reuse classification and the paper's
//!   `MostProfitableLoops` / `MostProfitableRefs`;
//! * [`dependence`] — SIV distance-vector analysis and permutation
//!   legality;
//! * [`footprint`] — element / cache-line / TLB-page footprint models
//!   (`Footprint(Refs, loop, Tiles)` of Figure 3).
//!
//! # Examples
//!
//! The analysis reproduces the paper's choices for Matrix Multiply: `K`
//! carries the register-level reuse (of `C[I,J]`), and `I`/`J` tie at the
//! L1 level, producing the two variants of Table 4:
//!
//! ```
//! use eco_analysis::{reuse, NestInfo};
//! use eco_kernels::Kernel;
//!
//! let k = Kernel::matmul();
//! let nest = NestInfo::from_program(&k.program)?;
//! let all: Vec<usize> = (0..nest.refs.len()).collect();
//! let vars = nest.loop_vars();
//! let reg = reuse::most_profitable_loops(&nest, &vars, &all, &all);
//! assert_eq!(reg.len(), 1);
//! assert_eq!(k.program.var(reg[0]).name, "K");
//! # Ok::<(), eco_analysis::NestError>(())
//! ```

mod nest;

pub mod dependence;
pub mod footprint;
pub mod reuse;

pub use nest::{NestError, NestInfo, RefInfo};

#[cfg(test)]
mod tests {
    use super::*;
    use dependence::{dependences, permutation_is_legal, DepKind, Dist};
    use eco_ir::VarId;
    use eco_kernels::Kernel;
    use footprint::{footprint_doubles, footprint_lines, footprint_pages, Trips};
    use reuse::{
        most_profitable_loops, most_profitable_refs, reuse_kind, temporal_savings, ReuseKind,
    };

    fn mm_nest() -> (Kernel, NestInfo) {
        let k = Kernel::matmul();
        let n = NestInfo::from_program(&k.program).expect("analyzable");
        (k, n)
    }

    fn var(k: &Kernel, name: &str) -> VarId {
        k.program.var_by_name(name).expect("var")
    }

    fn ref_idx(k: &Kernel, nest: &NestInfo, array: &str) -> usize {
        let a = k.program.array_by_name(array).expect("array");
        nest.refs.iter().position(|r| r.array == a).expect("ref")
    }

    #[test]
    fn mm_refs_are_collapsed() {
        let (k, nest) = mm_nest();
        // C appears as read and write of the same ref: one entry.
        assert_eq!(nest.refs.len(), 3);
        let c = ref_idx(&k, &nest, "C");
        assert_eq!(nest.refs[c].reads, 1);
        assert_eq!(nest.refs[c].writes, 1);
        assert!(nest.refs[c].is_reduction);
        assert_eq!(nest.refs[c].accesses(), 2);
    }

    #[test]
    fn mm_reuse_kinds() {
        let (k, nest) = mm_nest();
        let (i, j, kk) = (var(&k, "I"), var(&k, "J"), var(&k, "K"));
        let (a, b, c) = (
            ref_idx(&k, &nest, "A"),
            ref_idx(&k, &nest, "B"),
            ref_idx(&k, &nest, "C"),
        );
        assert_eq!(reuse_kind(&nest, c, kk), ReuseKind::SelfTemporal);
        assert_eq!(reuse_kind(&nest, a, j), ReuseKind::SelfTemporal);
        assert_eq!(reuse_kind(&nest, b, i), ReuseKind::SelfTemporal);
        // A[I,K] is walked contiguously by I (column-major).
        assert_eq!(reuse_kind(&nest, a, i), ReuseKind::SelfSpatial);
        assert_eq!(reuse_kind(&nest, b, kk), ReuseKind::SelfSpatial);
        assert_eq!(reuse_kind(&nest, b, j), ReuseKind::None);
    }

    #[test]
    fn mm_register_loop_is_k() {
        let (k, nest) = mm_nest();
        let all: Vec<usize> = (0..3).collect();
        let picked = most_profitable_loops(&nest, &nest.loop_vars(), &all, &all);
        assert_eq!(picked, vec![var(&k, "K")]);
        // C (2 accesses) beats A and B (1 each).
        assert_eq!(temporal_savings(&nest, var(&k, "K"), &all), 2);
        assert_eq!(temporal_savings(&nest, var(&k, "J"), &all), 1);
    }

    #[test]
    fn mm_l1_level_ties_i_and_j_giving_two_variants() {
        let (k, nest) = mm_nest();
        let c = ref_idx(&k, &nest, "C");
        let unmapped: Vec<usize> = (0..3).filter(|&r| r != c).collect();
        let candidates = vec![var(&k, "J"), var(&k, "I")];
        let picked = most_profitable_loops(&nest, &candidates, &unmapped, &[0, 1, 2]);
        assert_eq!(picked.len(), 2, "the tie produces variants v1 and v2");
    }

    #[test]
    fn mm_retained_refs_per_loop() {
        let (k, nest) = mm_nest();
        let (a, b, c) = (
            ref_idx(&k, &nest, "A"),
            ref_idx(&k, &nest, "B"),
            ref_idx(&k, &nest, "C"),
        );
        let all = vec![a, b, c];
        assert_eq!(most_profitable_refs(&nest, var(&k, "K"), &all), vec![c]);
        let unmapped = vec![a, b];
        assert_eq!(
            most_profitable_refs(&nest, var(&k, "I"), &unmapped),
            vec![b]
        );
        assert_eq!(
            most_profitable_refs(&nest, var(&k, "J"), &unmapped),
            vec![a]
        );
    }

    #[test]
    fn jacobi_groups_and_ties() {
        let k = Kernel::jacobi3d();
        let nest = NestInfo::from_program(&k.program).expect("analyzable");
        // 1 write ref to A + 6 reads of B in one group.
        assert_eq!(nest.refs.len(), 7);
        assert_eq!(nest.groups.len(), 2);
        let all: Vec<usize> = (0..7).collect();
        let picked = most_profitable_loops(&nest, &nest.loop_vars(), &all, &all);
        assert_eq!(picked.len(), 3, "all three loops carry equal reuse");
        // Group-temporal: B[I-1,...] re-reads what B[I+1,...] touched two
        // I-iterations earlier; B[I+1] is the group leader (and walks the
        // contiguous dimension, so it has self-spatial reuse along I).
        let b = k.program.array_by_name("B").expect("B");
        let im1 = nest
            .refs
            .iter()
            .position(|r| r.array == b && r.idx[0].constant_part() == -1)
            .expect("B[I-1]");
        let ip1 = nest
            .refs
            .iter()
            .position(|r| r.array == b && r.idx[0].constant_part() == 1)
            .expect("B[I+1]");
        assert_eq!(
            reuse_kind(&nest, im1, var(&k, "I")),
            ReuseKind::GroupTemporal
        );
        assert_eq!(reuse_kind(&nest, ip1, var(&k, "I")), ReuseKind::SelfSpatial);
        let (src, t) = reuse::group_source(&nest, im1, var(&k, "I")).expect("source");
        assert_eq!(nest.refs[src].idx[0].constant_part(), 1);
        assert_eq!(t, 2);
    }

    #[test]
    fn mm_only_dependence_is_the_c_reduction() {
        let (k, nest) = mm_nest();
        let deps = dependences(&nest);
        assert_eq!(deps.len(), 1);
        let d = &deps[0];
        assert!(d.is_reduction);
        let c = ref_idx(&k, &nest, "C");
        assert_eq!((d.src, d.dst), (c, c));
        // distance: K any, J = 0, I = 0 (outermost-first order K,J,I)
        assert_eq!(d.distance, vec![Dist::Any, Dist::Exact(0), Dist::Exact(0)]);
        // All 3! permutations legal (reduction reordering permitted).
        let (i, j, kk) = (var(&k, "I"), var(&k, "J"), var(&k, "K"));
        for order in [
            [i, j, kk],
            [i, kk, j],
            [j, i, kk],
            [j, kk, i],
            [kk, i, j],
            [kk, j, i],
        ] {
            assert!(permutation_is_legal(&nest, &deps, &order));
        }
    }

    #[test]
    fn jacobi_has_no_dependences() {
        let k = Kernel::jacobi3d();
        let nest = NestInfo::from_program(&k.program).expect("analyzable");
        assert!(dependences(&nest).is_empty());
    }

    #[test]
    fn forward_stencil_dependence_blocks_reversal() {
        // A[I] = A[I-1]: flow dep distance +1; order (I) legal, nothing
        // else to permute, but the dep is found and classified.
        use eco_ir::{AffineExpr, ArrayRef, Loop, Program, ScalarExpr, Stmt};
        let mut p = Program::new("scan");
        let n = p.add_param("N");
        let i = p.add_loop_var("I");
        let a = p.add_array("A", vec![AffineExpr::var(n)]);
        p.body.push(Stmt::For(Loop {
            var: i,
            lo: 1.into(),
            hi: (AffineExpr::var(n) - AffineExpr::constant(1)).into(),
            step: 1,
            body: vec![Stmt::Store {
                target: ArrayRef::new(a, vec![AffineExpr::var(i)]),
                value: ScalarExpr::Load(ArrayRef::new(
                    a,
                    vec![AffineExpr::var(i) - AffineExpr::constant(1)],
                )),
            }],
        }));
        let nest = NestInfo::from_program(&p).expect("analyzable");
        let deps = dependences(&nest);
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].kind, DepKind::Flow);
        assert_eq!(deps[0].distance, vec![Dist::Exact(1)]);
        assert!(!deps[0].is_reduction);
        let wr = nest.refs.iter().position(|r| r.writes > 0).expect("write");
        assert_eq!(deps[0].src, wr, "write is the source of the flow dep");
    }

    #[test]
    fn mm_footprints() {
        let (k, nest) = mm_nest();
        let (a, b, c) = (
            ref_idx(&k, &nest, "A"),
            ref_idx(&k, &nest, "B"),
            ref_idx(&k, &nest, "C"),
        );
        // Register tile: UI x UJ iterations, 1 iteration of K.
        let trips = Trips::with_default(1)
            .set(var(&k, "I"), 4)
            .set(var(&k, "J"), 2);
        assert_eq!(footprint_doubles(&nest, &[c], &trips), 8); // 4x2 block of C
        assert_eq!(footprint_doubles(&nest, &[a], &trips), 4); // A[I..I+3, K]
        assert_eq!(footprint_doubles(&nest, &[b], &trips), 2); // B[K, J..J+1]
        assert_eq!(footprint_doubles(&nest, &[a, b, c], &trips), 14);
        // L1 tile of B: TK x TJ.
        let l1 = Trips::with_default(1)
            .set(var(&k, "K"), 64)
            .set(var(&k, "J"), 32);
        assert_eq!(footprint_doubles(&nest, &[b], &l1), 64 * 32);
        // 4-double lines: 64/4 + 1 alignment line per column.
        assert_eq!(footprint_lines(&nest, &[b], &l1, 4), 17 * 32);
    }

    #[test]
    fn jacobi_group_footprint_includes_halo() {
        let k = Kernel::jacobi3d();
        let nest = NestInfo::from_program(&k.program).expect("analyzable");
        let b = k.program.array_by_name("B").expect("B");
        let brefs: Vec<usize> = (0..nest.refs.len())
            .filter(|&r| nest.refs[r].array == b)
            .collect();
        let trips = Trips::with_default(1)
            .set(k.program.var_by_name("I").expect("I"), 10)
            .set(k.program.var_by_name("J").expect("J"), 4);
        // ranges: I: 10-1+2+1 = 12, J: 4-1+2+1 = 6, K: 1+2 = 3
        assert_eq!(footprint_doubles(&nest, &brefs, &trips), 12 * 6 * 3);
    }

    #[test]
    fn page_footprint_regimes() {
        let (k, nest) = mm_nest();
        let b = ref_idx(&k, &nest, "B");
        let trips = Trips::with_default(1)
            .set(var(&k, "K"), 64)
            .set(var(&k, "J"), 8);
        // Long columns (4096 >> 16-double pages): per-column page count.
        let pages = footprint_pages(&nest, &[b], &trips, 16, 4096);
        assert_eq!(pages, (64u64.div_ceil(16) + 1) * 8);
        // Short columns (4 doubles per 16-double page): columns share.
        let pages2 = footprint_pages(&nest, &[b], &trips, 16, 4);
        assert_eq!(pages2, 8u64.div_ceil(4) + 1);
    }

    #[test]
    fn nest_error_on_imperfect_program() {
        use eco_ir::{AffineExpr, ArrayRef, Program, ScalarExpr, Stmt};
        let mut p = Program::new("flat");
        let a = p.add_array("A", vec![AffineExpr::constant(1)]);
        p.body.push(Stmt::Store {
            target: ArrayRef::new(a, vec![AffineExpr::constant(0)]),
            value: ScalarExpr::Const(1.0),
        });
        match NestInfo::from_program(&p) {
            Err(NestError::NotPerfectNest) => {}
            other => panic!("expected NotPerfectNest, got {other:?}"),
        }
    }
}
