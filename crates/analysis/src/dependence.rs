//! Data-dependence analysis for perfect affine nests, and the
//! permutation-legality test the transformation engine consults.
//!
//! The kernels of the paper have separable single-index-variable (SIV)
//! subscripts, for which exact distance vectors are computable; anything
//! the solver cannot prove is reported conservatively as [`Dist::Any`].

use crate::nest::{NestInfo, RefInfo};
use eco_ir::VarId;

/// Distance of a dependence along one loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dist {
    /// Exactly this many iterations.
    Exact(i64),
    /// Unknown / any distance.
    Any,
}

/// Classification of a dependence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// Write then read.
    Flow,
    /// Read then write.
    Anti,
    /// Write then write.
    Output,
}

/// A data dependence between two references of the nest body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dependence {
    /// Source reference (index into [`NestInfo::refs`]).
    pub src: usize,
    /// Destination reference.
    pub dst: usize,
    /// Kind (flow/anti/output).
    pub kind: DepKind,
    /// Distance per nest loop, outermost first.
    pub distance: Vec<Dist>,
    /// True if the dependence comes from a reduction statement the
    /// compiler is allowed to reorder (the paper compiles with
    /// `roundoff=3`, permitting reassociation of accumulations).
    pub is_reduction: bool,
}

/// Computes all data dependences of the nest (pairs involving at least
/// one write).
pub fn dependences(nest: &NestInfo) -> Vec<Dependence> {
    let vars = nest.loop_vars();
    let mut deps = Vec::new();
    for (i, a) in nest.refs.iter().enumerate() {
        for (j, b) in nest.refs.iter().enumerate() {
            if a.array != b.array {
                continue;
            }
            if a.writes == 0 && b.writes == 0 {
                continue;
            }
            // Consider each ordered pair once; self-pairs only for
            // read+write refs (the reduction case).
            if i > j {
                continue;
            }
            if i == j && (a.writes == 0 || a.reads == 0) && a.writes < 2 {
                continue;
            }
            if let Some(mut distance) = solve(a, b, &vars) {
                let mut kind = if a.writes > 0 && b.reads > 0 {
                    DepKind::Flow
                } else if a.reads > 0 && b.writes > 0 {
                    DepKind::Anti
                } else {
                    DepKind::Output
                };
                let (mut src, mut dst) = (i, j);
                // Normalize: the source must be the lexicographically
                // earlier iteration, so the leading exact component is
                // non-negative.
                let leading = distance
                    .iter()
                    .find(|d| !matches!(d, Dist::Exact(0)))
                    .copied();
                if let Some(Dist::Exact(t)) = leading {
                    if t < 0 {
                        for d in &mut distance {
                            if let Dist::Exact(x) = d {
                                *x = -*x;
                            }
                        }
                        std::mem::swap(&mut src, &mut dst);
                        kind = match kind {
                            DepKind::Flow => DepKind::Anti,
                            DepKind::Anti => DepKind::Flow,
                            DepKind::Output => DepKind::Output,
                        };
                    }
                }
                deps.push(Dependence {
                    src,
                    dst,
                    kind,
                    distance,
                    is_reduction: a.is_reduction && b.is_reduction,
                });
            }
        }
    }
    deps
}

/// Solves `a(i) = b(i + t)` for a distance vector `t`, returning `None`
/// if the accesses can never overlap, and `Any` components where the
/// distance is unconstrained or not provably exact.
fn solve(a: &RefInfo, b: &RefInfo, vars: &[VarId]) -> Option<Vec<Dist>> {
    let mut dist: Vec<Option<i64>> = vec![None; vars.len()];
    let mut constrained = vec![false; vars.len()];
    for d in 0..a.idx.len() {
        // Same linear part in this dimension?
        let lin_a: Vec<i64> = vars.iter().map(|&v| a.coeff(d, v)).collect();
        let lin_b: Vec<i64> = vars.iter().map(|&v| b.coeff(d, v)).collect();
        if lin_a != lin_b {
            // Coupled / non-uniform subscripts: be conservative.
            return Some(vec![Dist::Any; vars.len()]);
        }
        let delta = a.idx[d].constant_part() - b.idx[d].constant_part();
        let active: Vec<usize> = (0..vars.len()).filter(|&k| lin_a[k] != 0).collect();
        match active.len() {
            0 => {
                if delta != 0 {
                    return None; // ZIV: can never alias
                }
            }
            1 => {
                let k = active[0];
                let c = lin_a[k];
                if delta % c != 0 {
                    return None; // strong SIV: no integer solution
                }
                let t = delta / c;
                match dist[k] {
                    Some(prev) if prev != t => return None,
                    _ => dist[k] = Some(t),
                }
                constrained[k] = true;
            }
            _ => {
                // Multi-index dimension: mark all its vars unknown.
                for k in active {
                    constrained[k] = true;
                    dist[k] = None;
                }
            }
        }
    }
    Some(
        (0..vars.len())
            .map(|k| match (constrained[k], dist[k]) {
                (true, Some(t)) => Dist::Exact(t),
                (true, None) => Dist::Any,
                // Variable absent from every subscript: any distance.
                (false, _) => Dist::Any,
            })
            .collect(),
    )
}

/// True if permuting the nest loops into `order` (outermost first)
/// preserves every non-reduction dependence: each reordered distance
/// vector must be lexicographically non-negative, treating [`Dist::Any`]
/// as possibly negative.
pub fn permutation_is_legal(nest: &NestInfo, deps: &[Dependence], order: &[VarId]) -> bool {
    let vars = nest.loop_vars();
    let position = |v: VarId| vars.iter().position(|&w| w == v).expect("var in nest");
    for dep in deps {
        if dep.is_reduction {
            continue;
        }
        let mut decided = false;
        for &v in order {
            match dep.distance[position(v)] {
                Dist::Exact(t) if t > 0 => {
                    decided = true;
                    break;
                }
                Dist::Exact(0) => {}
                Dist::Exact(_) | Dist::Any => {
                    return false;
                }
            }
        }
        let _ = decided; // all-zero vectors are loop-independent: fine
    }
    true
}

/// True if unroll-and-jam of loop `u` preserves every non-reduction
/// dependence of the nest.
///
/// The classical sufficient condition (Callahan–Cocke–Kennedy): moving
/// `u` to the innermost position must not reverse any dependence. Unlike
/// [`permutation_is_legal`], which rejects any [`Dist::Any`] component
/// it meets before deciding, this test enumerates the possible *signs*
/// of `Any` components. An assignment that makes the vector
/// lexicographically negative in the original order describes the same
/// dependence flowing the other way (solver vectors with a leading
/// `Any` are not src/dst-normalized), so it is checked negated rather
/// than discarded. The refinement matters on tiled nests: every
/// dependence carries `Any` on the fresh tile-control loops (they never
/// appear in subscripts), which would otherwise block unrolling of a
/// perfectly legal inner point loop.
pub fn unroll_and_jam_is_legal(nest: &NestInfo, deps: &[Dependence], u: VarId) -> bool {
    let vars = nest.loop_vars();
    let n = vars.len();
    let Some(upos) = vars.iter().position(|&v| v == u) else {
        // Not a nest loop: nothing to prove (the structural rewrite
        // reports the missing loop).
        return true;
    };
    let new_order: Vec<usize> = (0..n)
        .filter(|&k| k != upos)
        .chain(std::iter::once(upos))
        .collect();
    let lex = |resolved: &[i64], order: &mut dyn Iterator<Item = usize>| -> i64 {
        order
            .map(|k| resolved[k].signum())
            .find(|&s| s != 0)
            .unwrap_or(0)
    };
    for dep in deps {
        if dep.is_reduction {
            continue;
        }
        let any_pos: Vec<usize> = (0..n).filter(|&k| dep.distance[k] == Dist::Any).collect();
        let mut signs = vec![-1i64; any_pos.len()];
        loop {
            let mut resolved: Vec<i64> = (0..n)
                .map(|k| match dep.distance[k] {
                    Dist::Exact(t) => t,
                    Dist::Any => signs[any_pos.iter().position(|&q| q == k).expect("any")],
                })
                .collect();
            if lex(&resolved, &mut (0..n)) < 0 {
                // The dependence actually flows from `dst` to `src`:
                // the real distance vector is the negation.
                for c in &mut resolved {
                    *c = -*c;
                }
            }
            if lex(&resolved, &mut new_order.iter().copied()) < 0 {
                return false;
            }
            // Next sign assignment in {-1, 0, 1}^m.
            let mut i = 0;
            loop {
                if i == signs.len() {
                    break;
                }
                if signs[i] < 1 {
                    signs[i] += 1;
                    break;
                }
                signs[i] = -1;
                i += 1;
            }
            if i == signs.len() {
                break;
            }
        }
    }
    true
}
