//! Footprint models: how much data (elements, cache lines, TLB pages) a
//! set of references touches inside a localized iteration space — the
//! paper's `Footprint(Refs, loop, Tiles)`.
//!
//! The model is the standard bounding-box one: per dimension, the range
//! of a subscript over the tile is `sum_v |coeff_v| * (trips_v - 1) + 1`,
//! extended over a uniformly-generated group by the spread of its
//! constant terms; the element footprint is the product of ranges.
//! Line and page footprints account for contiguity of the leftmost
//! dimension (column-major layout).

use crate::nest::{NestInfo, RefInfo};
use eco_ir::VarId;

/// Iteration counts per loop inside the localized space. Loops absent
/// from the map are treated as having the given default trip count.
#[derive(Debug, Clone, Default)]
pub struct Trips {
    pairs: Vec<(VarId, u64)>,
    default: u64,
}

impl Trips {
    /// All loops default to `default` trips unless overridden.
    pub fn with_default(default: u64) -> Self {
        Trips {
            pairs: Vec::new(),
            default,
        }
    }

    /// Sets the trip count of loop `v` (builder style).
    #[must_use]
    pub fn set(mut self, v: VarId, trips: u64) -> Self {
        self.pairs.push((v, trips));
        self
    }

    /// The trip count of loop `v`.
    pub fn get(&self, v: VarId) -> u64 {
        self.pairs
            .iter()
            .rev()
            .find(|&&(w, _)| w == v)
            .map(|&(_, t)| t)
            .unwrap_or(self.default)
    }
}

/// The per-dimension index ranges spanned by a group of
/// uniformly-generated references over `trips`.
fn group_ranges(refs: &[&RefInfo], trips: &Trips) -> Vec<u64> {
    let rank = refs[0].idx.len();
    (0..rank)
        .map(|d| {
            let lin: u64 = refs[0].idx[d]
                .terms()
                .iter()
                .map(|&(v, c)| c.unsigned_abs() * (trips.get(v).saturating_sub(1)))
                .sum();
            let cmin = refs
                .iter()
                .map(|r| r.idx[d].constant_part())
                .min()
                .expect("nonempty group");
            let cmax = refs
                .iter()
                .map(|r| r.idx[d].constant_part())
                .max()
                .expect("nonempty group");
            lin + (cmax - cmin) as u64 + 1
        })
        .collect()
}

/// Splits `refs` (indices into `nest.refs`) into uniformly-generated
/// groups and returns one slice of [`RefInfo`] per group.
fn grouped<'n>(nest: &'n NestInfo, refs: &[usize]) -> Vec<Vec<&'n RefInfo>> {
    let mut out: Vec<Vec<usize>> = Vec::new();
    for &r in refs {
        let g = nest.group_of(r);
        if let Some(bucket) = out.iter_mut().find(|b| g.contains(&b[0])) {
            if !bucket.contains(&r) {
                bucket.push(r);
            }
        } else {
            out.push(vec![r]);
        }
    }
    out.into_iter()
        .map(|b| b.into_iter().map(|r| &nest.refs[r]).collect())
        .collect()
}

/// Distinct array elements touched by `refs` over `trips`
/// (`Footprint` in double-precision words).
pub fn footprint_doubles(nest: &NestInfo, refs: &[usize], trips: &Trips) -> u64 {
    grouped(nest, refs)
        .iter()
        .map(|g| group_ranges(g, trips).iter().product::<u64>())
        .sum()
}

/// Cache lines touched by `refs` over `trips`, for a line of
/// `line_elems` doubles. Contiguity only helps in the leftmost
/// dimension, and only for unit-stride subscripts.
pub fn footprint_lines(nest: &NestInfo, refs: &[usize], trips: &Trips, line_elems: u64) -> u64 {
    grouped(nest, refs)
        .iter()
        .map(|g| {
            let ranges = group_ranges(g, trips);
            let unit_stride = g[0].idx[0].terms().iter().all(|&(_, c)| c.abs() == 1);
            let lines0 = if unit_stride {
                ranges[0].div_ceil(line_elems) + 1 // +1: tile not line-aligned
            } else {
                ranges[0]
            };
            lines0 * ranges[1..].iter().product::<u64>()
        })
        .sum()
}

/// TLB pages touched by `refs` over `trips`, for pages of `page_elems`
/// doubles and arrays whose contiguous (column) extent is
/// `column_extent` elements.
///
/// Each combination of non-leading subscripts starts a fresh column walk,
/// so a tile touching `r1` contiguous elements of a column costs
/// `ceil(r1 / page_elems) + 1` pages unless whole columns are shorter
/// than a page (then columns share pages).
pub fn footprint_pages(
    nest: &NestInfo,
    refs: &[usize],
    trips: &Trips,
    page_elems: u64,
    column_extent: u64,
) -> u64 {
    grouped(nest, refs)
        .iter()
        .map(|g| {
            let ranges = group_ranges(g, trips);
            let cols: u64 = ranges[1..].iter().product();
            if column_extent <= page_elems {
                // Several columns share one page.
                let cols_per_page = (page_elems / column_extent).max(1);
                cols.div_ceil(cols_per_page) + 1
            } else {
                (ranges[0].div_ceil(page_elems) + 1) * cols
            }
        })
        .sum()
}
