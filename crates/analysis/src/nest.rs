//! Extraction of the analyzable view of a kernel: the perfect loop nest
//! and its array references, with duplicate references collapsed and
//! uniform-generated references grouped (the unit at which the paper's
//! group-reuse analysis works).

use eco_ir::{AffineExpr, ArrayId, NestLoop, Program, Stmt, VarId};

/// One distinct array reference of the nest body, with how often it is
/// read and written per innermost iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefInfo {
    /// The referenced array.
    pub array: ArrayId,
    /// Affine subscripts (0-based, column-major: `idx[0]` contiguous).
    pub idx: Vec<AffineExpr>,
    /// Loads of exactly this reference per innermost iteration.
    pub reads: u32,
    /// Stores of exactly this reference per innermost iteration.
    pub writes: u32,
    /// True if the reference is read and written by the same statement
    /// (`C[I,J] = C[I,J] + ...`): a reduction the paper's compiler may
    /// reorder (cf. the `roundoff=3` flags of Table 3).
    pub is_reduction: bool,
}

impl RefInfo {
    /// Total accesses (loads + stores) per innermost iteration.
    pub fn accesses(&self) -> u32 {
        self.reads + self.writes
    }

    /// The coefficient of `v` in subscript dimension `d`.
    pub fn coeff(&self, d: usize, v: VarId) -> i64 {
        self.idx[d].coeff(v)
    }

    /// True if `v` appears in any subscript.
    pub fn uses(&self, v: VarId) -> bool {
        self.idx.iter().any(|e| e.uses(v))
    }

    /// The linear part of the subscripts (constants zeroed): two
    /// references with equal linear parts are *uniformly generated* and
    /// belong to one reuse group.
    pub fn linear_part(&self) -> Vec<AffineExpr> {
        self.idx
            .iter()
            .map(|e| e.clone().shifted(-e.constant_part()))
            .collect()
    }

    /// The constant part of each subscript.
    pub fn constants(&self) -> Vec<i64> {
        self.idx.iter().map(|e| e.constant_part()).collect()
    }
}

/// The analyzable view of a kernel program.
#[derive(Debug, Clone)]
pub struct NestInfo {
    /// Nest loops, outermost first.
    pub loops: Vec<NestLoop>,
    /// Distinct references of the body.
    pub refs: Vec<RefInfo>,
    /// Reuse groups: indices into `refs`, grouped by
    /// `(array, linear part)`.
    pub groups: Vec<Vec<usize>>,
}

/// Errors from nest extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NestError {
    /// The program body is not a single perfect loop nest.
    NotPerfectNest,
    /// The program failed validation.
    Invalid(String),
}

impl std::fmt::Display for NestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NestError::NotPerfectNest => write!(f, "program is not a single perfect loop nest"),
            NestError::Invalid(m) => write!(f, "invalid program: {m}"),
        }
    }
}

impl std::error::Error for NestError {}

impl NestInfo {
    /// Analyzes `program`, which must be a single perfect loop nest (the
    /// shape of every kernel in `eco-kernels`).
    ///
    /// # Errors
    ///
    /// Fails if the program is invalid or not a perfect nest.
    pub fn from_program(program: &Program) -> Result<NestInfo, NestError> {
        program.validate().map_err(NestError::Invalid)?;
        let (loops, body) = program.perfect_nest().ok_or(NestError::NotPerfectNest)?;
        let mut refs: Vec<RefInfo> = Vec::new();
        let mut upsert = |array: ArrayId, idx: &[AffineExpr], write: bool, reduction: bool| {
            if let Some(r) = refs.iter_mut().find(|r| r.array == array && r.idx == idx) {
                if write {
                    r.writes += 1;
                } else {
                    r.reads += 1;
                }
                r.is_reduction |= reduction;
            } else {
                refs.push(RefInfo {
                    array,
                    idx: idx.to_vec(),
                    reads: u32::from(!write),
                    writes: u32::from(write),
                    is_reduction: reduction,
                });
            }
        };
        for s in body {
            match s {
                Stmt::Store { target, value } => {
                    // Reduction: the stored reference also appears as a load
                    // of the same statement.
                    let mut self_read = false;
                    value.for_each_load(&mut |r| {
                        self_read |= r == target;
                    });
                    value.for_each_load(&mut |r| {
                        upsert(r.array, &r.idx, false, self_read && r == target);
                    });
                    upsert(target.array, &target.idx, true, self_read);
                }
                Stmt::SetTemp { value, .. } => {
                    value.for_each_load(&mut |r| upsert(r.array, &r.idx, false, false));
                }
                Stmt::Prefetch { .. } => {}
                Stmt::For(_) | Stmt::If { .. } => return Err(NestError::NotPerfectNest),
            }
        }
        let mut groups: Vec<(ArrayId, Vec<AffineExpr>, Vec<usize>)> = Vec::new();
        for (i, r) in refs.iter().enumerate() {
            let lin = r.linear_part();
            if let Some(g) = groups
                .iter_mut()
                .find(|(a, l, _)| *a == r.array && *l == lin)
            {
                g.2.push(i);
            } else {
                groups.push((r.array, lin, vec![i]));
            }
        }
        Ok(NestInfo {
            loops: loops.clone(),
            refs,
            groups: groups.into_iter().map(|(_, _, g)| g).collect(),
        })
    }

    /// The loop variables, outermost first.
    pub fn loop_vars(&self) -> Vec<VarId> {
        self.loops.iter().map(|l| l.var).collect()
    }

    /// The innermost loop variable.
    ///
    /// # Panics
    ///
    /// Panics if the nest has no loops (impossible for a value built by
    /// [`NestInfo::from_program`]).
    pub fn innermost(&self) -> VarId {
        self.loops.last().expect("nonempty nest").var
    }

    /// The group containing reference `r`.
    pub fn group_of(&self, r: usize) -> &[usize] {
        self.groups
            .iter()
            .find(|g| g.contains(&r))
            .expect("every ref is grouped")
    }
}
