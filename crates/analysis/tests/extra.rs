//! Supplementary analysis tests: dependence normalization, non-unit
//! strides, spatial savings, group closure.

use eco_analysis::dependence::{dependences, DepKind, Dist};
use eco_analysis::footprint::{footprint_doubles, footprint_lines, Trips};
use eco_analysis::reuse::{self, spatial_savings, uniform_distance};
use eco_analysis::NestInfo;
use eco_ir::{AffineExpr, ArrayRef, Loop, Program, ScalarExpr, Stmt};
use eco_kernels::Kernel;

/// `A[I] = A[I+1]` — an anti-dependence written with the read *ahead*,
/// which the solver must normalize (source = earlier iteration).
#[test]
fn anti_dependence_is_normalized() {
    let mut p = Program::new("shift");
    let n = p.add_param("N");
    let i = p.add_loop_var("I");
    let a = p.add_array("A", vec![AffineExpr::var(n)]);
    p.body.push(Stmt::For(Loop {
        var: i,
        lo: 0.into(),
        hi: (AffineExpr::var(n) - AffineExpr::constant(2)).into(),
        step: 1,
        body: vec![Stmt::Store {
            target: ArrayRef::new(a, vec![AffineExpr::var(i)]),
            value: ScalarExpr::Load(ArrayRef::new(
                a,
                vec![AffineExpr::var(i) + AffineExpr::constant(1)],
            )),
        }],
    }));
    let nest = NestInfo::from_program(&p).expect("analyzable");
    let deps = dependences(&nest);
    assert_eq!(deps.len(), 1);
    let d = &deps[0];
    assert_eq!(d.distance, vec![Dist::Exact(1)], "normalized positive");
    assert_eq!(d.kind, DepKind::Anti, "read at i+1 precedes write at i+1");
    let rd = nest.refs.iter().position(|r| r.writes == 0).expect("read");
    assert_eq!(d.src, rd, "the read is the source after normalization");
}

/// ZIV: constant subscripts that differ can never alias.
#[test]
fn ziv_disproves_dependence() {
    let mut p = Program::new("ziv");
    let i = p.add_loop_var("I");
    let a = p.add_array("A", vec![AffineExpr::constant(8)]);
    p.body.push(Stmt::For(Loop {
        var: i,
        lo: 0.into(),
        hi: 7.into(),
        step: 1,
        body: vec![Stmt::Store {
            target: ArrayRef::new(a, vec![AffineExpr::constant(0)]),
            value: ScalarExpr::Load(ArrayRef::new(a, vec![AffineExpr::constant(1)])),
        }],
    }));
    let nest = NestInfo::from_program(&p).expect("analyzable");
    assert!(dependences(&nest).is_empty());
}

/// Strong SIV with a non-dividing offset has no dependence.
#[test]
fn non_dividing_stride_disproves_dependence() {
    let mut p = Program::new("stride");
    let n = p.add_param("N");
    let i = p.add_loop_var("I");
    let a = p.add_array("A", vec![AffineExpr::var(n)]);
    // A[2I] = A[2I+1]: even vs odd elements never alias.
    p.body.push(Stmt::For(Loop {
        var: i,
        lo: 0.into(),
        hi: AffineExpr::constant(7).into(),
        step: 1,
        body: vec![Stmt::Store {
            target: ArrayRef::new(a, vec![AffineExpr::var(i) * 2]),
            value: ScalarExpr::Load(ArrayRef::new(
                a,
                vec![AffineExpr::var(i) * 2 + AffineExpr::constant(1)],
            )),
        }],
    }));
    let nest = NestInfo::from_program(&p).expect("analyzable");
    assert!(dependences(&nest).is_empty());
}

#[test]
fn uniform_distance_rejects_mixed_offsets() {
    let k = Kernel::jacobi3d();
    let nest = NestInfo::from_program(&k.program).expect("analyzable");
    let b = k.program.array_by_name("B").expect("B");
    let i = k.program.var_by_name("I").expect("I");
    let bm1 = nest
        .refs
        .iter()
        .position(|r| r.array == b && r.idx[0].constant_part() == -1)
        .expect("B[I-1]");
    let bj1 = nest
        .refs
        .iter()
        .position(|r| r.array == b && r.idx[1].constant_part() == 1)
        .expect("B[.,J+1,.]");
    // B[I-1,J,K] and B[I,J+1,K] differ in a dimension I does not move:
    // no distance along I.
    assert_eq!(uniform_distance(&nest.refs[bm1], &nest.refs[bj1], i), None);
}

#[test]
fn spatial_savings_counts_contiguous_walkers() {
    let k = Kernel::matmul();
    let nest = NestInfo::from_program(&k.program).expect("analyzable");
    let i = k.program.var_by_name("I").expect("I");
    let j = k.program.var_by_name("J").expect("J");
    let all: Vec<usize> = (0..nest.refs.len()).collect();
    // I walks A (1 access) and C (2 accesses) contiguously.
    assert_eq!(spatial_savings(&nest, i, &all), 3);
    // J walks nothing contiguously (column-major).
    assert_eq!(spatial_savings(&nest, j, &all), 0);
}

#[test]
fn group_closure_pulls_sources_into_retained_set() {
    let k = Kernel::jacobi3d();
    let nest = NestInfo::from_program(&k.program).expect("analyzable");
    let i = k.program.var_by_name("I").expect("I");
    let all: Vec<usize> = (0..nest.refs.len()).collect();
    let retained = reuse::most_profitable_refs(&nest, i, &all);
    let b = k.program.array_by_name("B").expect("B");
    // The I+-1 pair must be retained together (the tile includes the
    // source of the group reuse).
    let offsets: Vec<i64> = retained
        .iter()
        .filter(|&&r| nest.refs[r].array == b && nest.refs[r].idx[0].uses(i))
        .map(|&r| nest.refs[r].idx[0].constant_part())
        .collect();
    assert!(offsets.contains(&-1) && offsets.contains(&1), "{offsets:?}");
}

#[test]
fn non_unit_stride_footprint_does_not_get_line_discount() {
    let mut p = Program::new("stride2");
    let n = p.add_param("N");
    let i = p.add_loop_var("I");
    let a = p.add_array("A", vec![AffineExpr::var(n)]);
    p.body.push(Stmt::For(Loop {
        var: i,
        lo: 0.into(),
        hi: (AffineExpr::var(n) - AffineExpr::constant(1)).into(),
        step: 1,
        body: vec![Stmt::Store {
            target: ArrayRef::new(a, vec![AffineExpr::var(i) * 4]),
            value: ScalarExpr::Const(0.0),
        }],
    }));
    let nest = NestInfo::from_program(&p).expect("analyzable");
    let trips = Trips::with_default(1).set(i, 16);
    // elements: range = 4*15 + 1 = 61
    assert_eq!(footprint_doubles(&nest, &[0], &trips), 61);
    // no line sharing for stride 4 (each element on its own line at
    // 4-double lines): lines == element range, not range/4.
    assert_eq!(footprint_lines(&nest, &[0], &trips, 4), 61);
}
