//! Reading the other side of the telemetry contract.
//!
//! [`EventStream`](crate::EventStream) and [`Json`] only ever *emit*;
//! this module parses those bytes back into typed structures so tools
//! (the `eco report` subsystem, tests, ad-hoc scripts) never have to
//! re-implement JSON scraping on top of [`field`](crate::field):
//!
//! * [`Json::parse`] — a strict, whitespace-tolerant parser for the
//!   JSON subset the workspace emits. Documents round-trip:
//!   `Json::parse(doc.render())` re-renders byte-identically, and a
//!   compact record line re-renders byte-identically through
//!   [`Json::render_compact`].
//! * [`Record`] — one parsed stream record (`span_open` /
//!   `span_close` / `event`) with its reserved header fields split out
//!   and the remaining attributes kept in emission order.
//! * [`read_records`] — a buffered streaming reader over a JSONL
//!   stream; the buffer size only affects I/O chunking, never the
//!   parse, which the report determinism tests rely on.

use crate::{json_escape, Json};
use std::fmt::Write as _;
use std::io::{self, Read};

// ---------------------------------------------------------------------
// JSON parsing
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("json parse error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') | Some(b'f') => {
                if self.eat_literal("true") {
                    Ok(Json::Bool(true))
                } else if self.eat_literal("false") {
                    Ok(Json::Bool(false))
                } else {
                    Err(self.err("expected boolean"))
                }
            }
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Json::Null)
                } else {
                    Err(self.err("expected null"))
                }
            }
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(&format!("unexpected {:?}", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates never appear in our own output;
                            // map them to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("invalid float"))
        } else if let Some(neg) = text.strip_prefix('-') {
            // `-0` and friends stay signed; magnitudes beyond i64 fall
            // back to float (never emitted by this workspace).
            match neg.parse::<i64>() {
                Ok(v) => Ok(Json::Int(-v)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Json::Float)
                    .map_err(|_| self.err("invalid integer")),
            }
        } else {
            match text.parse::<u64>() {
                Ok(v) => Ok(Json::UInt(v)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Json::Float)
                    .map_err(|_| self.err("invalid integer")),
            }
        }
    }
}

impl Json {
    /// Parses a JSON document (the subset this workspace emits:
    /// objects, arrays, strings, numbers, booleans, `null`).
    ///
    /// Number typing: a literal containing `.`/`e`/`E` parses as
    /// [`Json::Float`]; a leading `-` as [`Json::Int`]; anything else
    /// as [`Json::UInt`]. Because both builders render floats through
    /// Rust's shortest-roundtrip `Display`, `parse(render())`
    /// re-renders byte-identically even where a whole-valued float
    /// degrades to an integer variant.
    ///
    /// # Errors
    ///
    /// Returns a message naming the byte offset of the first error,
    /// including trailing garbage after the document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing garbage after document"));
        }
        Ok(value)
    }

    /// Renders the document compactly (no whitespace), matching the
    /// record-line format [`EventStream`](crate::EventStream) emits:
    /// `{"k":v,"k2":v2}`.
    pub fn render_compact(&self) -> String {
        let mut out = String::with_capacity(96);
        self.compact_into(&mut out);
        out
    }

    fn compact_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                out.push_str(&json_escape(s));
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.compact_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&json_escape(k));
                    out.push_str("\":");
                    v.compact_into(out);
                }
                out.push('}');
            }
        }
    }

    /// The value at `key` if this is an object with that field.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value at a `.`-separated path (`"smoke.points_per_sec"`).
    pub fn get_path(&self, path: &str) -> Option<&Json> {
        let mut cur = self;
        for key in path.split('.') {
            cur = cur.get(key)?;
        }
        Some(cur)
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `u64`, if integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Int(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as `i64`, if integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            Json::UInt(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as `f64`, for any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Float(v) => Some(*v),
            Json::Int(v) => Some(*v as f64),
            Json::UInt(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as `bool`, if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(v) => Some(*v),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------
// Stream records
// ---------------------------------------------------------------------

/// The record type discriminated by the `ev` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A `span_open` record.
    SpanOpen,
    /// A `span_close` record.
    SpanClose,
    /// An `event` record.
    Event,
}

/// One parsed stream record: the reserved header fields split out,
/// every remaining attribute kept in emission order.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Record type.
    pub kind: RecordKind,
    /// Dense emission sequence number.
    pub seq: u64,
    /// Microseconds since stream creation (diagnostic only).
    pub t_us: u64,
    /// The record's span id (0 = none).
    pub span: u64,
    /// Enclosing span at open time (`span_open` only).
    pub parent: Option<u64>,
    /// Span or event name (absent on `span_close`).
    pub name: Option<String>,
    /// Non-reserved attributes, in emission order.
    pub attrs: Vec<(String, Json)>,
}

impl Record {
    /// Parses one JSONL record line.
    ///
    /// # Errors
    ///
    /// Returns a message for malformed JSON, an unknown `ev`, or a
    /// missing/mistyped reserved header field.
    pub fn parse(line: &str) -> Result<Record, String> {
        let doc = Json::parse(line)?;
        let fields = match doc {
            Json::Obj(fields) => fields,
            _ => return Err("record is not a JSON object".to_string()),
        };
        let mut kind = None;
        let mut seq = None;
        let mut t_us = None;
        let mut span = None;
        let mut parent = None;
        let mut name = None;
        let mut attrs = Vec::new();
        for (key, value) in fields {
            match key.as_str() {
                "ev" => {
                    kind = Some(match value.as_str() {
                        Some("span_open") => RecordKind::SpanOpen,
                        Some("span_close") => RecordKind::SpanClose,
                        Some("event") => RecordKind::Event,
                        _ => return Err(format!("unknown record type {value:?}")),
                    })
                }
                "seq" => seq = value.as_u64(),
                "t_us" => t_us = value.as_u64(),
                "span" => span = value.as_u64(),
                "parent" => parent = value.as_u64(),
                "name" => name = value.as_str().map(str::to_string),
                _ => attrs.push((key, value)),
            }
        }
        let kind = kind.ok_or("missing ev")?;
        let record = Record {
            kind,
            seq: seq.ok_or("missing/mistyped seq")?,
            t_us: t_us.ok_or("missing/mistyped t_us")?,
            span: span.ok_or("missing/mistyped span")?,
            parent,
            name,
            attrs,
        };
        match kind {
            RecordKind::SpanOpen => {
                if record.parent.is_none() {
                    return Err("span_open missing parent".to_string());
                }
                if record.name.is_none() {
                    return Err("span_open missing name".to_string());
                }
            }
            RecordKind::Event => {
                if record.name.is_none() {
                    return Err("event missing name".to_string());
                }
            }
            RecordKind::SpanClose => {}
        }
        Ok(record)
    }

    /// The attribute value at `key`, if present.
    pub fn attr(&self, key: &str) -> Option<&Json> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// String attribute at `key`.
    pub fn attr_str(&self, key: &str) -> Option<&str> {
        self.attr(key).and_then(Json::as_str)
    }

    /// `u64` attribute at `key`.
    pub fn attr_u64(&self, key: &str) -> Option<u64> {
        self.attr(key).and_then(Json::as_u64)
    }

    /// `f64` attribute at `key` (any numeric variant).
    pub fn attr_f64(&self, key: &str) -> Option<f64> {
        self.attr(key).and_then(Json::as_f64)
    }

    /// Boolean attribute at `key`.
    pub fn attr_bool(&self, key: &str) -> Option<bool> {
        self.attr(key).and_then(Json::as_bool)
    }
}

/// Reads a whole JSONL stream from `reader` into parsed records,
/// chunking I/O at `buf_size` bytes (clamped to ≥ 1). The chunk size
/// affects only how bytes are pulled, never line splitting or parsing —
/// outputs derived from the records are byte-identical at any
/// `buf_size`.
///
/// # Errors
///
/// Returns `io::Error` for read failures; parse errors surface as
/// [`io::ErrorKind::InvalidData`] naming the offending line.
pub fn read_records(mut reader: impl Read, buf_size: usize) -> io::Result<Vec<Record>> {
    let mut chunk = vec![0u8; buf_size.max(1)];
    let mut pending = Vec::new();
    let mut records = Vec::new();
    let mut lineno = 0usize;
    let parse = |line: &[u8], lineno: usize| -> io::Result<Record> {
        let text = std::str::from_utf8(line).map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {lineno}: invalid utf-8"),
            )
        })?;
        Record::parse(text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("line {lineno}: {e}")))
    };
    loop {
        let n = reader.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        pending.extend_from_slice(&chunk[..n]);
        while let Some(nl) = pending.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = pending.drain(..=nl).collect();
            lineno += 1;
            records.push(parse(&line[..line.len() - 1], lineno)?);
        }
    }
    if !pending.is_empty() {
        lineno += 1;
        records.push(parse(&pending, lineno)?);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_stream, Attrs, EventStream};
    use std::sync::{Arc, Mutex};

    fn sample_stream() -> String {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let s = EventStream::to_shared_buffer(Arc::clone(&buf));
        let root = s.span("optimize", None, Attrs::new().str("kernel", "mm"));
        let screen = s.span("screen", Some(root), Attrs::new().uint("variants", 6));
        s.event(
            "point",
            Some(screen),
            Attrs::new()
                .str("label", "v2/screen \"q\"")
                .int("delta", -7)
                .uint("cycles", 123456)
                .float("rate", 0.75)
                .bool("cache_hit", false),
        );
        s.close_span(screen, Attrs::new().uint("points", 1));
        s.close_span(root, Attrs::new().str("selected", "v2"));
        s.flush();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        text
    }

    #[test]
    fn record_lines_round_trip_byte_identically() {
        let text = sample_stream();
        check_stream(&text).expect("valid stream");
        for line in text.lines() {
            let doc = Json::parse(line).expect("parses");
            assert_eq!(doc.render_compact(), line, "compact round-trip");
        }
    }

    #[test]
    fn pretty_documents_round_trip_byte_identically() {
        let doc = Json::obj()
            .field("manifest_version", Json::UInt(1))
            .field("kernel", Json::str("mm"))
            .field("fingerprint", Json::fingerprint(0xdead_beef))
            .field("negative", Json::Int(-42))
            .field("rate", Json::Float(0.375))
            .field("whole", Json::Float(3.0))
            .field("sizes", Json::Arr(vec![Json::Int(24), Json::Int(32)]))
            .field("empty_list", Json::Arr(vec![]))
            .field("empty_obj", Json::obj())
            .field("flag", Json::Bool(true))
            .field("nothing", Json::Null);
        let rendered = doc.render();
        let reparsed = Json::parse(&rendered).expect("parses");
        assert_eq!(reparsed.render(), rendered, "pretty round-trip");
        // And the parse is structurally faithful where types are
        // preserved (whole floats degrade to UInt by design).
        assert_eq!(reparsed.get("kernel").and_then(Json::as_str), Some("mm"));
        assert_eq!(reparsed.get("negative").and_then(Json::as_i64), Some(-42));
        assert_eq!(reparsed.get("rate"), Some(&Json::Float(0.375)));
        assert_eq!(reparsed.get("whole"), Some(&Json::UInt(3)));
        assert_eq!(
            reparsed.get_path("empty_obj").cloned(),
            Some(Json::obj()),
            "get_path reaches nested fields"
        );
    }

    #[test]
    fn records_parse_with_typed_headers_and_attrs() {
        let text = sample_stream();
        let records = read_records(text.as_bytes(), 4096).expect("reads");
        assert_eq!(records.len(), 5);
        let open = &records[0];
        assert_eq!(open.kind, RecordKind::SpanOpen);
        assert_eq!(open.seq, 0);
        assert_eq!(open.parent, Some(0));
        assert_eq!(open.name.as_deref(), Some("optimize"));
        assert_eq!(open.attr_str("kernel"), Some("mm"));
        let point = &records[2];
        assert_eq!(point.kind, RecordKind::Event);
        assert_eq!(point.name.as_deref(), Some("point"));
        assert_eq!(point.attr_str("label"), Some("v2/screen \"q\""));
        assert_eq!(point.attr("delta"), Some(&Json::Int(-7)));
        assert_eq!(point.attr_u64("cycles"), Some(123456));
        assert_eq!(point.attr_f64("rate"), Some(0.75));
        assert_eq!(point.attr_bool("cache_hit"), Some(false));
        assert_eq!(point.attr("missing"), None);
        let close = &records[4];
        assert_eq!(close.kind, RecordKind::SpanClose);
        assert_eq!(close.name, None);
        assert_eq!(close.attr_str("selected"), Some("v2"));
    }

    #[test]
    fn buffer_size_never_changes_the_parse() {
        let text = sample_stream();
        let baseline = read_records(text.as_bytes(), 8192).expect("reads");
        for buf_size in [1, 2, 3, 7, 64, 1 << 20] {
            let records = read_records(text.as_bytes(), buf_size).expect("reads");
            assert_eq!(records, baseline, "buf_size={buf_size}");
        }
    }

    #[test]
    fn malformed_lines_are_rejected_with_context() {
        assert!(Record::parse("not json").is_err());
        assert!(Record::parse(r#"{"ev":"bogus","seq":0,"t_us":0,"span":0}"#).is_err());
        assert!(Record::parse(r#"{"ev":"event","seq":0,"t_us":0,"span":0}"#)
            .unwrap_err()
            .contains("missing name"));
        assert!(
            Record::parse(r#"{"ev":"span_open","seq":0,"t_us":0,"span":1,"name":"x"}"#)
                .unwrap_err()
                .contains("missing parent")
        );
        let err = read_records("{\"ev\":\"event\"}\n".as_bytes(), 4)
            .expect_err("must fail")
            .to_string();
        assert!(err.contains("line 1"), "{err}");
        assert!(Json::parse("{\"a\":1} trailing").is_err());
        assert!(Json::parse("[1,2,").is_err());
    }
}
