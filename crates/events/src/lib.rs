//! Structured observability primitives for the ECO pipeline.
//!
//! The search and the evaluation engine are staged empirical processes;
//! a final CSV says *where* they converged but not *why*. This crate is
//! the evidence-trail substrate the rest of the workspace builds on
//! (no external dependencies — the container is offline):
//!
//! * [`EventStream`] — an append-only JSONL stream of **spans** (one per
//!   search stage: screening, shape search, footprint halving,
//!   refinement, prefetch passes, …) and **events** (per-point
//!   measurements, memo hits, plan compilations, counter snapshots).
//!   Records carry a dense sequence number and a wall-clock offset;
//!   span open/close records are properly nested, which
//!   [`check_stream`] verifies.
//! * [`Scope`] — a cheap clonable handle around an optional stream, so
//!   instrumented code pays nothing when observability is off.
//! * [`Json`] — an order-preserving JSON document builder whose
//!   rendering is byte-deterministic, used for **run manifests**: two
//!   runs with the same inputs must produce identical manifest bytes,
//!   making drift diffable (and CI-gateable) at the byte level.
//! * [`Fnv64`] — the workspace's stable content-fingerprint hash
//!   (FNV-1a), shared by the engine's memo keys and the manifests'
//!   program/machine fingerprints.
//! * [`read`] — the consuming side: parse record lines back into
//!   typed [`read::Record`]s and whole documents back into [`Json`]
//!   (byte-identical round trips), so analysis tools never scrape
//!   JSONL by hand.
//!
//! # Record schema
//!
//! One JSON object per line; `ev` discriminates the record type:
//!
//! ```text
//! {"ev":"span_open","seq":0,"t_us":3,"span":1,"parent":0,"name":"optimize",...attrs}
//! {"ev":"event","seq":1,"t_us":9,"span":1,"name":"point",...attrs}
//! {"ev":"span_close","seq":2,"t_us":12,"span":1,...attrs}
//! ```
//!
//! `seq` is dense from 0 (total order of emission), `t_us` is
//! microseconds since the stream was created (diagnostic only — never
//! part of a manifest), `span` is the record's span id (0 = none),
//! `parent` is the enclosing span at open time. Attribute keys must not
//! collide with the reserved keys `ev`, `seq`, `t_us`, `span`,
//! `parent`, `name`.
//!
//! # Examples
//!
//! ```
//! use eco_events::{check_stream, Attrs, EventStream};
//! use std::sync::{Arc, Mutex};
//!
//! let buf = Arc::new(Mutex::new(Vec::new()));
//! let stream = EventStream::to_shared_buffer(Arc::clone(&buf));
//! let root = stream.span("optimize", None, Attrs::new().str("kernel", "mm"));
//! stream.event("point", Some(root), Attrs::new().int("cycles", 1234));
//! stream.close_span(root, Attrs::new().uint("points", 1));
//! stream.flush();
//! let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
//! let summary = check_stream(&text).unwrap();
//! assert_eq!(summary.span_names, vec!["optimize"]);
//! assert_eq!(summary.events, 1);
//! ```

pub mod read;

/// Well-known event names emitted across the workspace, so producers
/// (engine, search, service layer) and consumers (`eco report`, tests)
/// agree on spelling. New subsystems should add their names here rather
/// than inlining string literals at emission sites.
pub mod names {
    /// Engine construction: machine model, backend, memoization.
    pub const ENGINE_INIT: &str = "engine_init";
    /// One evaluated (or cache-served) search point.
    pub const POINT: &str = "point";
    /// One `eval_batch` call: job/unique/hit totals, worker threads.
    pub const BATCH: &str = "batch";
    /// A running snapshot of the engine's counters.
    pub const ENGINE_STATS: &str = "engine_stats";
    /// One program lowered to an executable plan.
    pub const PLAN_COMPILE: &str = "plan_compile";
    /// A best-effort write to the persistent result store failed.
    pub const STORE_ERROR: &str = "store_error";
    /// `eco serve` accepted a request (op, client id).
    pub const SERVE_REQUEST: &str = "serve_request";
    /// `eco serve` finished a request (status, wall time; an `error`
    /// attribute carries the failure string on error paths).
    pub const SERVE_DONE: &str = "serve_done";
    /// `eco serve` handled a request slower than its `--slow-ms`
    /// threshold (op, wall time).
    pub const SERVE_SLOW: &str = "serve_slow";
    /// A sweep orchestrator started executing a plan (figure, shard
    /// totals, workers).
    pub const SWEEP_BEGIN: &str = "sweep_begin";
    /// One shard executed inside a worker (figure, family, kind) —
    /// the span enclosing the shard's engine records.
    pub const SHARD: &str = "shard";
    /// The orchestrator handed a shard to a worker.
    pub const SHARD_SPAWN: &str = "shard_spawn";
    /// The orchestrator observed a shard finish (status, wall time).
    pub const SHARD_DONE: &str = "shard_done";
    /// The orchestrator merged shard results back into figure outputs.
    pub const SWEEP_GATHER: &str = "sweep_gather";
}

use std::fmt::Write as _;
use std::fs::File;
use std::hash::Hasher;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

// ---------------------------------------------------------------------
// Fingerprinting
// ---------------------------------------------------------------------

/// FNV-1a, the workspace's stable content hash: usable both on raw
/// bytes and as a [`std::hash::Hasher`] so `#[derive(Hash)]` types can
/// feed it. Stable across runs and platforms within a build; values are
/// persisted only as opaque fingerprints.
pub struct Fnv64(u64);

impl Fnv64 {
    /// A hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    /// The fingerprint of one byte string.
    pub fn hash_bytes(bytes: &[u8]) -> u64 {
        let mut h = Fnv64::new();
        h.write(bytes);
        h.finish()
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Hasher for Fnv64 {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

// ---------------------------------------------------------------------
// JSON primitives
// ---------------------------------------------------------------------

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// An attribute value: the scalar types event records and manifests
/// carry.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// A JSON string.
    Str(String),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A float, rendered with Rust's shortest-roundtrip `Display`.
    Float(f64),
    /// A boolean.
    Bool(bool),
}

impl AttrValue {
    fn render_into(&self, out: &mut String) {
        match self {
            AttrValue::Str(s) => {
                out.push('"');
                out.push_str(&json_escape(s));
                out.push('"');
            }
            AttrValue::Int(v) => {
                let _ = write!(out, "{v}");
            }
            AttrValue::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            AttrValue::Float(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            AttrValue::Bool(v) => {
                let _ = write!(out, "{v}");
            }
        }
    }
}

/// An ordered list of `key: value` attributes attached to a record.
/// Order is preserved verbatim in the output, so attribute emission is
/// deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Attrs(Vec<(String, AttrValue)>);

impl Attrs {
    /// An empty attribute list.
    pub fn new() -> Self {
        Attrs(Vec::new())
    }

    /// Appends a string attribute (builder style).
    #[must_use]
    pub fn str(mut self, key: &str, value: impl AsRef<str>) -> Self {
        self.0
            .push((key.to_string(), AttrValue::Str(value.as_ref().to_string())));
        self
    }

    /// Appends a signed integer attribute (builder style).
    #[must_use]
    pub fn int(mut self, key: &str, value: i64) -> Self {
        self.0.push((key.to_string(), AttrValue::Int(value)));
        self
    }

    /// Appends an unsigned integer attribute (builder style).
    #[must_use]
    pub fn uint(mut self, key: &str, value: u64) -> Self {
        self.0.push((key.to_string(), AttrValue::UInt(value)));
        self
    }

    /// Appends a float attribute (builder style).
    #[must_use]
    pub fn float(mut self, key: &str, value: f64) -> Self {
        self.0.push((key.to_string(), AttrValue::Float(value)));
        self
    }

    /// Appends a boolean attribute (builder style).
    #[must_use]
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.0.push((key.to_string(), AttrValue::Bool(value)));
        self
    }

    fn render_into(&self, out: &mut String) {
        for (k, v) in &self.0 {
            out.push_str(",\"");
            out.push_str(&json_escape(k));
            out.push_str("\":");
            v.render_into(out);
        }
    }
}

// ---------------------------------------------------------------------
// The event stream
// ---------------------------------------------------------------------

/// Identity of an open span within one [`EventStream`]. Ids start at 1;
/// 0 in the serialized form means "no span".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(u64);

impl SpanId {
    /// The serialized id.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// An append-only JSONL stream of spans and events.
///
/// Thread-safe: records from concurrent emitters interleave whole-line
/// at a time and the `seq` field gives the total emission order. Write
/// errors after creation are deliberately ignored (telemetry must never
/// fail a run); creation errors are surfaced so a misspelled path fails
/// fast.
pub struct EventStream {
    writer: Mutex<Box<dyn Write + Send>>,
    seq: AtomicU64,
    next_span: AtomicU64,
    t0: Instant,
}

impl std::fmt::Debug for EventStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventStream")
            .field("seq", &self.seq.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// A shared in-memory sink for tests and tools.
struct SharedBuffer(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuffer {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.lock().expect("buffer lock").extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl EventStream {
    /// A stream writing to `sink`.
    pub fn to_writer(sink: Box<dyn Write + Send>) -> Self {
        EventStream {
            writer: Mutex::new(sink),
            seq: AtomicU64::new(0),
            next_span: AtomicU64::new(1),
            t0: Instant::now(),
        }
    }

    /// A stream writing (buffered) to a fresh file at `path`; the file
    /// is created (truncated) immediately so an unwritable path fails
    /// fast.
    ///
    /// # Errors
    ///
    /// Returns the `File::create` error.
    pub fn to_file(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self::to_writer(Box::new(BufWriter::new(file))))
    }

    /// A stream appending to a shared byte buffer (tests, tools).
    pub fn to_shared_buffer(buf: Arc<Mutex<Vec<u8>>>) -> Self {
        Self::to_writer(Box::new(SharedBuffer(buf)))
    }

    fn emit_record(&self, head: &str, span: u64, tail: &str, attrs: &Attrs) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let t_us = self.t0.elapsed().as_micros() as u64;
        let mut line = String::with_capacity(96);
        let _ = write!(
            line,
            "{{\"ev\":\"{head}\",\"seq\":{seq},\"t_us\":{t_us},\"span\":{span}"
        );
        line.push_str(tail);
        attrs.render_into(&mut line);
        line.push('}');
        let mut w = self.writer.lock().expect("event writer lock");
        let _ = writeln!(w, "{line}");
    }

    /// Opens a span and emits its `span_open` record. `parent` is the
    /// enclosing span (None at the root).
    pub fn span(&self, name: &str, parent: Option<SpanId>, attrs: Attrs) -> SpanId {
        let id = SpanId(self.next_span.fetch_add(1, Ordering::Relaxed));
        let tail = format!(
            ",\"parent\":{},\"name\":\"{}\"",
            parent.map_or(0, SpanId::raw),
            json_escape(name)
        );
        self.emit_record("span_open", id.0, &tail, &attrs);
        id
    }

    /// Emits the `span_close` record for `span`. Every opened span must
    /// be closed exactly once, in properly nested (LIFO) order —
    /// [`check_stream`] enforces this.
    pub fn close_span(&self, span: SpanId, attrs: Attrs) {
        self.emit_record("span_close", span.0, "", &attrs);
    }

    /// Emits a point event, attributed to `span` when given.
    pub fn event(&self, name: &str, span: Option<SpanId>, attrs: Attrs) {
        let tail = format!(",\"name\":\"{}\"", json_escape(name));
        self.emit_record("event", span.map_or(0, SpanId::raw), &tail, &attrs);
    }

    /// Flushes buffered records to the sink.
    pub fn flush(&self) {
        let _ = self.writer.lock().expect("event writer lock").flush();
    }
}

impl Drop for EventStream {
    fn drop(&mut self) {
        self.flush();
    }
}

/// A cheap clonable handle over an optional [`EventStream`]: every
/// operation is a no-op when observability is off, so instrumented code
/// calls unconditionally.
#[derive(Debug, Clone, Default)]
pub struct Scope {
    stream: Option<Arc<EventStream>>,
}

impl Scope {
    /// A scope over `stream` (None = disabled).
    pub fn new(stream: Option<Arc<EventStream>>) -> Self {
        Scope { stream }
    }

    /// A disabled scope.
    pub fn off() -> Self {
        Scope { stream: None }
    }

    /// Whether events are actually recorded.
    pub fn enabled(&self) -> bool {
        self.stream.is_some()
    }

    /// The underlying stream, if any.
    pub fn stream(&self) -> Option<&Arc<EventStream>> {
        self.stream.as_ref()
    }

    /// Opens a span (no-op returning `None` when disabled).
    pub fn span(&self, name: &str, parent: Option<SpanId>, attrs: Attrs) -> Option<SpanId> {
        self.stream.as_ref().map(|s| s.span(name, parent, attrs))
    }

    /// Closes a span opened by [`Scope::span`].
    pub fn close(&self, span: Option<SpanId>, attrs: Attrs) {
        if let (Some(stream), Some(span)) = (&self.stream, span) {
            stream.close_span(span, attrs);
        }
    }

    /// Emits an event.
    pub fn event(&self, name: &str, span: Option<SpanId>, attrs: Attrs) {
        if let Some(stream) = &self.stream {
            stream.event(name, span, attrs);
        }
    }

    /// Flushes the stream, if any.
    pub fn flush(&self) {
        if let Some(stream) = &self.stream {
            stream.flush();
        }
    }
}

// ---------------------------------------------------------------------
// Stream validation
// ---------------------------------------------------------------------

/// What [`check_stream`] learned about a well-formed stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamSummary {
    /// Total records.
    pub records: usize,
    /// `event` records.
    pub events: usize,
    /// Names of opened (and closed) spans, in open order.
    pub span_names: Vec<String>,
    /// Names of `event` records, in emission order.
    pub event_names: Vec<String>,
}

impl StreamSummary {
    /// How many spans with this name were opened.
    pub fn spans_named(&self, name: &str) -> usize {
        self.span_names.iter().filter(|n| *n == name).count()
    }

    /// How many events with this name were emitted.
    pub fn events_named(&self, name: &str) -> usize {
        self.event_names.iter().filter(|n| *n == name).count()
    }
}

/// Extracts the raw text of `"key":<value>` from a record line, where
/// the value is a number, boolean, or string (strings are returned
/// without the surrounding quotes but still escaped). Searches
/// whole-key matches only; sufficient for the machine-generated
/// records this crate emits, and exported so tests and tools can poke
/// at streams without a JSON parser.
pub fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let mut from = 0;
    while let Some(pos) = line[from..].find(&needle) {
        let at = from + pos;
        // A key match must be preceded by '{' or ','.
        if at > 0 && !matches!(line.as_bytes()[at - 1], b'{' | b',') {
            from = at + needle.len();
            continue;
        }
        let rest = &line[at + needle.len()..];
        return Some(if let Some(s) = rest.strip_prefix('"') {
            let mut end = 0;
            let b = s.as_bytes();
            while end < b.len() && b[end] != b'"' {
                if b[end] == b'\\' {
                    end += 1;
                }
                end += 1;
            }
            &s[..end.min(s.len())]
        } else {
            let end = rest.find([',', '}']).unwrap_or(rest.len());
            &rest[..end]
        });
    }
    None
}

/// Validates a serialized event stream: every line is a record of a
/// known type, `seq` is dense from 0, every `span_open` is closed
/// exactly once in properly nested (LIFO) order with its `parent` equal
/// to the span open at that moment, and events reference open spans
/// (or none).
///
/// # Errors
///
/// Returns a message naming the first offending line.
pub fn check_stream(text: &str) -> Result<StreamSummary, String> {
    let mut summary = StreamSummary::default();
    let mut stack: Vec<(u64, String)> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let at = |msg: &str| format!("line {}: {msg}: {line}", lineno + 1);
        if !(line.starts_with('{') && line.ends_with('}')) {
            return Err(at("not a JSON object"));
        }
        let seq: u64 = field(line, "seq")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| at("missing seq"))?;
        if seq != lineno as u64 {
            return Err(at(&format!("seq {seq}, expected {lineno}")));
        }
        let span: u64 = field(line, "span")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| at("missing span"))?;
        match field(line, "ev") {
            Some("span_open") => {
                let parent: u64 = field(line, "parent")
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| at("missing parent"))?;
                let open_parent = stack.last().map_or(0, |(id, _)| *id);
                if parent != open_parent {
                    return Err(at(&format!(
                        "parent {parent} is not the enclosing span {open_parent}"
                    )));
                }
                let name = field(line, "name").ok_or_else(|| at("missing name"))?;
                stack.push((span, name.to_string()));
                summary.span_names.push(name.to_string());
            }
            Some("span_close") => match stack.pop() {
                Some((open, _)) if open == span => {}
                Some((open, name)) => {
                    return Err(at(&format!(
                        "closes span {span} but innermost open span is {open} ({name})"
                    )))
                }
                None => return Err(at("close with no open span")),
            },
            Some("event") => {
                if span != 0 && !stack.iter().any(|(id, _)| *id == span) {
                    return Err(at(&format!("event references closed/unknown span {span}")));
                }
                let name = field(line, "name").ok_or_else(|| at("missing name"))?;
                summary.event_names.push(name.to_string());
                summary.events += 1;
            }
            Some(other) => return Err(at(&format!("unknown record type {other:?}"))),
            None => return Err(at("missing ev")),
        }
        summary.records += 1;
    }
    if let Some((id, name)) = stack.pop() {
        return Err(format!("span {id} ({name}) was never closed"));
    }
    Ok(summary)
}

// ---------------------------------------------------------------------
// Canonical JSON documents (run manifests)
// ---------------------------------------------------------------------

/// An order-preserving JSON document with byte-deterministic rendering.
///
/// Object keys render in insertion order; numbers render via Rust's
/// `Display` (shortest roundtrip for floats); there is no whitespace
/// variance. Manifests built from the same inputs are therefore
/// byte-identical — the property `repro check` gates on.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A finite float (non-finite renders as `null`).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with keys in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// A string value.
    pub fn str(s: impl AsRef<str>) -> Json {
        Json::Str(s.as_ref().to_string())
    }

    /// Appends a field to an object (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    #[must_use]
    pub fn field(mut self, key: &str, value: Json) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value)),
            other => panic!("field() on non-object {other:?}"),
        }
        self
    }

    /// A `0x`-prefixed hexadecimal fingerprint string.
    pub fn fingerprint(fp: u64) -> Json {
        Json::Str(format!("{fp:#018x}"))
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        const PAD: &str = "  ";
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                out.push_str(&json_escape(s));
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&PAD.repeat(indent + 1));
                    item.render_into(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&PAD.repeat(indent));
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&PAD.repeat(indent + 1));
                    out.push('"');
                    out.push_str(&json_escape(k));
                    out.push_str("\": ");
                    v.render_into(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&PAD.repeat(indent));
                out.push('}');
            }
        }
    }

    /// Renders the document as pretty-printed JSON with a trailing
    /// newline (byte-deterministic).
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(256);
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(stream: &EventStream, buf: &Arc<Mutex<Vec<u8>>>) -> String {
        stream.flush();
        String::from_utf8(buf.lock().expect("buf").clone()).expect("utf8")
    }

    fn fresh() -> (EventStream, Arc<Mutex<Vec<u8>>>) {
        let buf = Arc::new(Mutex::new(Vec::new()));
        (EventStream::to_shared_buffer(Arc::clone(&buf)), buf)
    }

    #[test]
    fn nested_spans_validate_and_summarize() {
        let (s, buf) = fresh();
        let root = s.span("optimize", None, Attrs::new().str("kernel", "mm"));
        let screen = s.span("screen", Some(root), Attrs::new());
        s.event("point", Some(screen), Attrs::new().uint("cycles", 42));
        s.close_span(screen, Attrs::new().uint("points", 1));
        let v = s.span("variant", Some(root), Attrs::new().str("name", "v2"));
        s.event("improved", Some(v), Attrs::new().uint("cycles", 40));
        s.close_span(v, Attrs::new());
        s.close_span(root, Attrs::new());
        let text = collect(&s, &buf);
        let summary = check_stream(&text).expect("valid stream");
        assert_eq!(summary.records, 8);
        assert_eq!(summary.events, 2);
        assert_eq!(summary.span_names, vec!["optimize", "screen", "variant"]);
        assert_eq!(summary.spans_named("variant"), 1);
        // seq is dense and in emission order
        for (i, line) in text.lines().enumerate() {
            assert!(line.contains(&format!("\"seq\":{i}")), "{line}");
        }
    }

    #[test]
    fn unclosed_span_is_rejected() {
        let (s, buf) = fresh();
        let root = s.span("optimize", None, Attrs::new());
        let _leak = s.span("screen", Some(root), Attrs::new());
        s.close_span(root, Attrs::new());
        let text = collect(&s, &buf);
        let err = check_stream(&text).expect_err("must reject");
        assert!(err.contains("innermost open span"), "{err}");
    }

    #[test]
    fn out_of_order_close_and_bad_parent_are_rejected() {
        // Close references a span that is not the innermost open one.
        let (s, buf) = fresh();
        let a = s.span("a", None, Attrs::new());
        let _b = s.span("b", Some(a), Attrs::new());
        s.close_span(a, Attrs::new());
        let err = check_stream(&collect(&s, &buf)).expect_err("LIFO violated");
        assert!(err.contains("innermost"), "{err}");

        // A parent that is not the enclosing span.
        let (s, buf) = fresh();
        let a = s.span("a", None, Attrs::new());
        s.close_span(a, Attrs::new());
        let _b = s.span("b", Some(a), Attrs::new()); // a already closed
        let err = check_stream(&collect(&s, &buf)).expect_err("bad parent");
        assert!(err.contains("not the enclosing span"), "{err}");
    }

    #[test]
    fn events_must_reference_open_spans() {
        let (s, buf) = fresh();
        let a = s.span("a", None, Attrs::new());
        s.close_span(a, Attrs::new());
        s.event("late", Some(a), Attrs::new());
        let err = check_stream(&collect(&s, &buf)).expect_err("stale span ref");
        assert!(err.contains("closed/unknown span"), "{err}");
        // ...but span-less events are always fine.
        let (s, buf) = fresh();
        s.event("global", None, Attrs::new().bool("ok", true));
        let summary = check_stream(&collect(&s, &buf)).expect("valid");
        assert_eq!(summary.events, 1);
    }

    #[test]
    fn attrs_escape_and_render_all_types() {
        let (s, buf) = fresh();
        s.event(
            "kinds",
            None,
            Attrs::new()
                .str("label", "quote\" tab\t")
                .int("neg", -3)
                .uint("big", u64::MAX)
                .float("f", 1.5)
                .bool("flag", false),
        );
        let text = collect(&s, &buf);
        assert!(text.contains("\"label\":\"quote\\\" tab\\t\""), "{text}");
        assert!(text.contains("\"neg\":-3"), "{text}");
        assert!(text.contains(&format!("\"big\":{}", u64::MAX)), "{text}");
        assert!(text.contains("\"f\":1.5"), "{text}");
        assert!(text.contains("\"flag\":false"), "{text}");
        check_stream(&text).expect("valid");
    }

    #[test]
    fn disabled_scope_is_a_no_op() {
        let scope = Scope::off();
        assert!(!scope.enabled());
        let span = scope.span("x", None, Attrs::new());
        assert_eq!(span, None);
        scope.event("y", span, Attrs::new());
        scope.close(span, Attrs::new());
        scope.flush();
    }

    #[test]
    fn json_documents_render_deterministically() {
        let doc = || {
            Json::obj()
                .field("manifest_version", Json::UInt(1))
                .field("kernel", Json::str("mm"))
                .field("fingerprint", Json::fingerprint(0xdead_beef))
                .field("sizes", Json::Arr(vec![Json::Int(24), Json::Int(32)]))
                .field("empty_list", Json::Arr(vec![]))
                .field("empty_obj", Json::obj())
                .field("nested", Json::obj().field("hit_rate", Json::Float(0.75)))
        };
        let a = doc().render();
        let b = doc().render();
        assert_eq!(a, b);
        assert!(a.ends_with('\n'));
        assert!(a.contains("\"fingerprint\": \"0x00000000deadbeef\""), "{a}");
        assert!(a.contains("\"empty_list\": []"), "{a}");
        assert!(a.contains("\"hit_rate\": 0.75"), "{a}");
        // Key order is insertion order, not alphabetical.
        assert!(a.find("manifest_version").unwrap() < a.find("kernel").unwrap());
    }

    #[test]
    fn fnv_is_stable() {
        // Reference FNV-1a vectors.
        assert_eq!(Fnv64::hash_bytes(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(Fnv64::hash_bytes(b"a"), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv64::new();
        std::hash::Hash::hash(&42u64, &mut h);
        let mut h2 = Fnv64::new();
        std::hash::Hash::hash(&42u64, &mut h2);
        assert_eq!(h.finish(), h2.finish());
    }

    #[test]
    fn field_extraction_ignores_value_text() {
        // A value containing something that looks like a key must not
        // shadow the real field.
        let line =
            r#"{"ev":"event","seq":0,"t_us":1,"span":0,"name":"x","label":"fake,\"seq\":9"}"#;
        assert_eq!(field(line, "seq"), Some("0"));
        assert_eq!(field(line, "name"), Some("x"));
        assert_eq!(field(line, "missing"), None);
    }
}
