//! Pass 2: dependence preservation.
//!
//! The original kernel nest yields exact (or conservative
//! [`Dist::Any`]) distance vectors. The transformed program executes
//! those iterations in a different order — tiled, interchanged,
//! unrolled-and-jammed — and this pass proves that every non-reduction
//! dependence still flows forward in the new order.
//!
//! The transformed *spine* (the deepest chain of loops, skipping copy
//! fill loops and residue guards) is classified against the original
//! loop variables: a spine loop reusing an original variable is a point
//! loop (step > 1 after unrolling), a fresh variable is a tile control
//! for whichever deeper spine loop its value bounds. Each original
//! distance `d` then splits across that variable's axes — tile controls
//! (multiples of the tile), the point loop (multiples of the unroll
//! step), and an implicit innermost intra-unroll offset — and the pass
//! searches for any split of any dependence that is lexicographically
//! negative in the transformed axis order. Conservative `Any` distances
//! are enumerated by sign, constrained by causality (the original
//! vector must be lexicographically non-negative).

use crate::bounds::{render_ctx, Ctx};
use crate::{DiagCode, Sink};
use eco_analysis::dependence::{dependences, Dependence, Dist};
use eco_analysis::NestInfo;
use eco_ir::{Loop, Program, Stmt};

fn depth_of(s: &Stmt) -> usize {
    match s {
        Stmt::For(l) => 1 + l.body.iter().map(depth_of).max().unwrap_or(0),
        Stmt::If { then, .. } => then.iter().map(depth_of).max().unwrap_or(0),
        _ => 0,
    }
}

fn deepest_loop<'p>(stmts: &'p [Stmt], best: &mut Option<(&'p Loop, usize)>) {
    for s in stmts {
        match s {
            Stmt::For(l) => {
                let d = 1 + l.body.iter().map(depth_of).max().unwrap_or(0);
                // Ties go to the later statement: copy fills are
                // prepended before the compute nest they feed.
                if best.is_none_or(|(_, bd)| d >= bd) {
                    *best = Some((l, d));
                }
            }
            Stmt::If { then, .. } => deepest_loop(then, best),
            _ => {}
        }
    }
}

/// The compute spine: at each level, the deepest loop (descending
/// through residue guards), outermost first.
fn spine_of(p: &Program) -> Vec<&Loop> {
    let mut spine = Vec::new();
    let mut stmts: &[Stmt] = &p.body;
    loop {
        let mut best = None;
        deepest_loop(stmts, &mut best);
        match best {
            Some((l, _)) => {
                spine.push(l);
                stmts = &l.body;
            }
            None => return spine,
        }
    }
}

/// One axis of the transformed iteration order: a spine loop (tile
/// control or point loop) or an implicit intra-unroll offset.
struct Axis {
    /// Index of the original loop variable this axis subdivides.
    ov: usize,
    /// The axis quantum: values on the axis are multiples of it (tile
    /// size for controls, step for point loops, 1 for intra offsets).
    size: i64,
    /// True if this is the variable's final axis (the remaining
    /// distance must be consumed here).
    last: bool,
}

/// Per-variable split state during the violation search.
#[derive(Clone, Copy)]
enum St {
    /// Exact remaining distance still to distribute over the
    /// variable's remaining axes.
    Exact(i64),
    /// `Any` distance of known overall sign; no nonzero axis value
    /// emitted yet (the first nonzero must match the sign).
    Pending(i64),
    /// `Any` distance whose sign has been emitted; later axes free.
    Free,
}

/// Searches for an axis-value assignment consistent with `states` that
/// is lexicographically negative: a (possibly empty) all-zero prefix
/// followed by a negative value. Positive-leading assignments are
/// pruned (they preserve the dependence).
fn violation(axes: &[Axis], states: &[St]) -> bool {
    let Some(axis) = axes.first() else {
        // All spine axes zero: only intra-unroll offsets remain, whose
        // mutual order we do not model — sound iff none can be
        // negative (any negative offset is first in *some* order).
        return states
            .iter()
            .any(|s| matches!(s, St::Exact(r) if *r < 0) || matches!(s, St::Pending(-1)));
    };
    let mut options: Vec<(i64, St)> = Vec::new();
    match states[axis.ov] {
        St::Exact(rem) => {
            // rem = k*size + m with |m| <= size-1: at most two k's.
            let k0 = rem.div_euclid(axis.size);
            options.push((k0 * axis.size, St::Exact(rem - k0 * axis.size)));
            if rem.rem_euclid(axis.size) != 0 {
                let k1 = k0 + 1;
                options.push((k1 * axis.size, St::Exact(rem - k1 * axis.size)));
            }
        }
        St::Pending(0) => options.push((0, St::Pending(0))),
        St::Pending(sign) => {
            if !axis.last {
                options.push((0, St::Pending(sign)));
            }
            options.push((sign, St::Free));
        }
        St::Free => {
            options.push((-1, St::Free));
            options.push((0, St::Free));
            options.push((1, St::Free));
        }
    }
    for (value, next) in options {
        if value < 0 {
            return true;
        }
        if value == 0 {
            let mut states = states.to_vec();
            states[axis.ov] = next;
            if violation(&axes[1..], &states) {
                return true;
            }
        }
        // value > 0: lexicographically positive, dependence preserved.
    }
    false
}

fn dist_string(d: &[Dist]) -> String {
    let parts: Vec<String> = d
        .iter()
        .map(|c| match c {
            Dist::Exact(t) => t.to_string(),
            Dist::Any => "*".to_string(),
        })
        .collect();
    format!("({})", parts.join(", "))
}

/// True if `dep` (with `Any` components resolved to `signs`, the whole
/// vector negated if `negate`) can be executed out of order by the
/// transformed axis structure.
fn dep_violated(dep: &Dependence, axes: &[Axis], signs: &[i64], negate: bool) -> bool {
    let m = if negate { -1 } else { 1 };
    let mut si = 0;
    let states: Vec<St> = dep
        .distance
        .iter()
        .map(|c| match c {
            Dist::Exact(t) => St::Exact(m * t),
            Dist::Any => {
                si += 1;
                St::Pending(m * signs[si - 1])
            }
        })
        .collect();
    violation(axes, &states)
}

/// Pass 2 entry point.
pub(crate) fn check(original: &Program, transformed: &Program, sink: &mut Sink) {
    let nest = match NestInfo::from_program(original) {
        Ok(n) => n,
        Err(e) => {
            sink.push(
                DiagCode::Malformed,
                format!("original program not analyzable for dependences: {e}"),
                Vec::new(),
            );
            return;
        }
    };
    let deps = dependences(&nest);
    sink.checked_deps += deps.len();
    if deps.iter().all(|d| d.is_reduction) {
        return;
    }

    let spine = spine_of(transformed);
    let spine_ctx: Vec<Ctx> = spine
        .iter()
        .map(|l| Ctx::Loop {
            var: l.var,
            lo: l.lo.clone(),
            hi: l.hi.clone(),
            step: l.step,
        })
        .collect();
    let context = render_ctx(transformed, &spine_ctx);

    let orig_names: Vec<&str> = nest
        .loops
        .iter()
        .map(|l| original.var(l.var).name.as_str())
        .collect();

    // Classify each spine loop: original variable -> point loop; fresh
    // variable -> tile control of whichever deeper loop it bounds.
    let mut resolved: Vec<Option<usize>> = spine
        .iter()
        .map(|l| {
            let name = transformed.var(l.var).name.as_str();
            orig_names.iter().position(|n| *n == name)
        })
        .collect();
    for p in 0..spine.len() {
        if resolved[p].is_some() {
            continue;
        }
        let mut cur = p;
        while resolved[p].is_none() {
            let v = spine[cur].var;
            let Some(next) = (cur + 1..spine.len()).find(|&q| spine[q].lo.uses(v)) else {
                break;
            };
            cur = next;
            resolved[p] = resolved[cur];
        }
        if resolved[p].is_none() {
            sink.push(
                DiagCode::Malformed,
                format!(
                    "cannot relate transformed loop {} to the original nest",
                    transformed.var(spine[p].var).name
                ),
                context.clone(),
            );
            return;
        }
    }

    // Every original variable needs a point loop in the spine.
    let mut point_pos = vec![None; orig_names.len()];
    for (p, l) in spine.iter().enumerate() {
        let name = transformed.var(l.var).name.as_str();
        if let Some(ov) = orig_names.iter().position(|n| *n == name) {
            point_pos[ov] = Some(p);
        }
    }
    let Some(point_pos) = point_pos.into_iter().collect::<Option<Vec<usize>>>() else {
        sink.push(
            DiagCode::Malformed,
            "an original loop is missing from the transformed nest".to_string(),
            context.clone(),
        );
        return;
    };

    // Execution-order axes: the spine loops, then an intra-unroll axis
    // (quantum 1) per unrolled variable, innermost.
    let mut axes: Vec<Axis> = spine
        .iter()
        .enumerate()
        .map(|(p, l)| Axis {
            ov: resolved[p].expect("resolved above"),
            size: l.step,
            last: false,
        })
        .collect();
    for (ov, &p) in point_pos.iter().enumerate() {
        if spine[p].step > 1 {
            axes.push(Axis {
                ov,
                size: 1,
                last: true,
            });
        } else {
            axes[p].last = true;
        }
    }

    for dep in &deps {
        if dep.is_reduction {
            continue;
        }
        let any_count = dep
            .distance
            .iter()
            .filter(|c| matches!(c, Dist::Any))
            .count();
        // Enumerate sign assignments for Any components. An assignment
        // making the original vector lexicographically negative is the
        // same dependence flowing the other way (leading-`Any` vectors
        // are not src/dst-normalized by the solver): check it negated.
        let mut flagged = false;
        let mut signs = vec![-1i64; any_count];
        'combos: loop {
            let mut si = 0;
            let mut lex = 0i64;
            for c in &dep.distance {
                let v = match c {
                    Dist::Exact(t) => *t,
                    Dist::Any => {
                        si += 1;
                        signs[si - 1]
                    }
                };
                if lex == 0 {
                    lex = v.signum();
                }
            }
            if dep_violated(dep, &axes, &signs, lex < 0) {
                flagged = true;
            }
            // Next combination in {-1, 0, 1}^any_count.
            let mut i = 0;
            loop {
                if i == any_count {
                    break 'combos;
                }
                if signs[i] < 1 {
                    signs[i] += 1;
                    break;
                }
                signs[i] = -1;
                i += 1;
            }
            if flagged {
                break;
            }
        }
        if flagged {
            let array = &original.array(nest.refs[dep.src].array).name;
            sink.push(
                DiagCode::DependenceNotPreserved,
                format!(
                    "{:?} dependence on {array} with distance {} can be reversed by the transformed loop order",
                    dep.kind,
                    dist_string(&dep.distance),
                ),
                context.clone(),
            );
        }
    }
}
