//! Pass 3: scalar-replacement soundness.
//!
//! Scalar replacement caches array elements in temporaries across
//! iterations (invariant accumulators, rotating stencil registers). The
//! cached copy is sound only if no *other* store can write the cached
//! element between the temporary's definition and its uses: such a
//! store would be observed by the original program but not by the
//! register copy.
//!
//! For each temporary the pass collects its defining `SetTemp`
//! statements, the array elements those definitions load, and every
//! statement reading the temporary, then scans the statement span they
//! jointly occupy (the subtree range under their lowest common
//! ancestor). Any store in that span that is not itself part of the
//! temporary's def/use web, is not a register write-back (`X[..] = t`,
//! the pattern scalar replacement emits for sibling accumulators), and
//! whose target interval overlaps a loaded element in every dimension
//! is flagged as [`DiagCode::ScalarReplacementAliased`]. Two different
//! temporaries writing back to the identical element are flagged too
//! (double write-back: one of them must be stale).

use crate::bounds::{interval, param_env, render_ctx, Ctx};
use crate::{DiagCode, Sink};
use eco_ir::pretty::ref_to_string;
use eco_ir::{ArrayRef, Program, ScalarExpr, Stmt, TempId, VarId};

/// Collects the array loads of an expression, keeping their addresses
/// alive with the program (`for_each_load` can't return borrows).
fn loads_of<'p>(e: &'p ScalarExpr, out: &mut Vec<&'p ArrayRef>) {
    match e {
        ScalarExpr::Const(_) | ScalarExpr::Temp(_) => {}
        ScalarExpr::Load(r) => out.push(r),
        ScalarExpr::Add(a, b) | ScalarExpr::Sub(a, b) | ScalarExpr::Mul(a, b) => {
            loads_of(a, out);
            loads_of(b, out);
        }
    }
}

fn contains_temp(e: &ScalarExpr, t: TempId) -> bool {
    match e {
        ScalarExpr::Const(_) | ScalarExpr::Load(_) => false,
        ScalarExpr::Temp(u) => *u == t,
        ScalarExpr::Add(a, b) | ScalarExpr::Sub(a, b) | ScalarExpr::Mul(a, b) => {
            contains_temp(a, t) || contains_temp(b, t)
        }
    }
}

/// A statement with its tree position and enclosing loop context.
struct Site<'p> {
    stmt: &'p Stmt,
    path: Vec<usize>,
    ctx: Vec<Ctx>,
}

fn collect<'p>(p: &'p Program) -> Vec<Site<'p>> {
    let mut sites = Vec::new();
    let mut path: Vec<usize> = Vec::new();
    fn go<'p>(
        stmts: &'p [Stmt],
        path: &mut Vec<usize>,
        ctx: &mut Vec<Ctx>,
        out: &mut Vec<Site<'p>>,
    ) {
        for (i, s) in stmts.iter().enumerate() {
            path.push(i);
            out.push(Site {
                stmt: s,
                path: path.clone(),
                ctx: ctx.clone(),
            });
            match s {
                Stmt::For(l) => {
                    ctx.push(Ctx::Loop {
                        var: l.var,
                        lo: l.lo.clone(),
                        hi: l.hi.clone(),
                        step: l.step,
                    });
                    go(&l.body, path, ctx, out);
                    ctx.pop();
                }
                Stmt::If { cond, then } => {
                    ctx.push(Ctx::Guard(cond.clone()));
                    go(then, path, ctx, out);
                    ctx.pop();
                }
                _ => {}
            }
            path.pop();
        }
    }
    let mut ctx = Vec::new();
    go(&p.body, &mut path, &mut ctx, &mut sites);
    sites
}

/// Do the two references' value sets provably overlap (or fail to be
/// provably disjoint) in every dimension?
fn may_overlap(
    a: (&ArrayRef, &[Ctx]),
    b: (&ArrayRef, &[Ctx]),
    env: &impl Fn(VarId) -> Option<i64>,
) -> bool {
    for d in 0..a.0.idx.len().min(b.0.idx.len()) {
        let (Some(ia), Some(ib)) = (
            interval(&a.0.idx[d], a.1, env),
            interval(&b.0.idx[d], b.1, env),
        ) else {
            // Unboundable subscripts are reported by pass 1; stay quiet
            // here rather than duplicating.
            return false;
        };
        if ia.1 < ib.0 || ib.1 < ia.0 {
            return false;
        }
    }
    true
}

/// Pass 3 entry point.
pub(crate) fn check(p: &Program, binding: &[(String, i64)], sink: &mut Sink) {
    let env = param_env(p, binding);
    let sites = collect(p);

    for ti in 0..p.temps.len() {
        let t = TempId(ti as u32);
        let mut involved: Vec<usize> = Vec::new();
        let mut defs: Vec<usize> = Vec::new();
        for (i, site) in sites.iter().enumerate() {
            match site.stmt {
                Stmt::SetTemp { temp, value } => {
                    if *temp == t || contains_temp(value, t) {
                        involved.push(i);
                    }
                    if *temp == t {
                        defs.push(i);
                    }
                }
                Stmt::Store { value, .. } if contains_temp(value, t) => involved.push(i),
                _ => {}
            }
        }
        if defs.is_empty() || involved.len() < 2 {
            continue;
        }

        // Elements the temporary caches: loads inside its definitions.
        let mut cached: Vec<(&ArrayRef, &[Ctx])> = Vec::new();
        for &d in &defs {
            if let Stmt::SetTemp { value, .. } = sites[d].stmt {
                let mut loads = Vec::new();
                loads_of(value, &mut loads);
                for r in loads {
                    cached.push((r, &sites[d].ctx));
                }
            }
        }
        if cached.is_empty() {
            continue;
        }

        // The span jointly occupied by the def/use web: the child-index
        // range of the involved statements under their lowest common
        // ancestor.
        let mut prefix: &[usize] = &sites[involved[0]].path;
        for &i in &involved[1..] {
            let q = &sites[i].path;
            let common = prefix
                .iter()
                .zip(q.iter())
                .take_while(|(a, b)| a == b)
                .count();
            prefix = &prefix[..common];
        }
        let depth = prefix.len();
        let range = {
            let comps: Vec<usize> = involved.iter().map(|&i| sites[i].path[depth]).collect();
            (
                *comps.iter().min().expect("nonempty"),
                *comps.iter().max().expect("nonempty"),
            )
        };

        for (i, site) in sites.iter().enumerate() {
            if involved.contains(&i) {
                continue;
            }
            let Stmt::Store { target, value } = site.stmt else {
                continue;
            };
            if site.path.len() <= depth
                || site.path[..depth] != *prefix
                || site.path[depth] < range.0
                || site.path[depth] > range.1
            {
                continue;
            }
            // `X[..] = t'` is scalar replacement's own write-back shape
            // for a sibling register: exempt from aliasing (the
            // double-write-back check below catches corrupt overlaps).
            if matches!(value, ScalarExpr::Temp(_)) {
                continue;
            }
            for (r, rctx) in &cached {
                if target.array == r.array && may_overlap((target, &site.ctx), (r, rctx), &env) {
                    sink.push(
                        DiagCode::ScalarReplacementAliased,
                        format!(
                            "store to {} may alias {} cached in register {} between its load and use",
                            ref_to_string(p, target),
                            ref_to_string(p, r),
                            p.temps[ti],
                        ),
                        render_ctx(p, &site.ctx),
                    );
                    break;
                }
            }
        }
    }

    // Double write-back: two different registers flushed to the same
    // element — at least one value is stale.
    let mut writebacks: Vec<(&ArrayRef, TempId)> = Vec::new();
    for site in &sites {
        if let Stmt::Store {
            target,
            value: ScalarExpr::Temp(u),
        } = site.stmt
        {
            writebacks.push((target, *u));
        }
    }
    for (i, (ra, ta)) in writebacks.iter().enumerate() {
        for (rb, tb) in &writebacks[i + 1..] {
            if ta != tb && ra.array == rb.array && ra.idx == rb.idx {
                sink.push(
                    DiagCode::ScalarReplacementAliased,
                    format!(
                        "registers {} and {} both write back to {}",
                        p.temps[ta.index()],
                        p.temps[tb.index()],
                        ref_to_string(p, ra),
                    ),
                    Vec::new(),
                );
            }
        }
    }
}
