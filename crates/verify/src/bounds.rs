//! Pass 1: symbolic affine interval analysis.
//!
//! The transformed programs the search generates correlate loop
//! variables tightly — a copy-buffer subscript like `K - KK` is bounded
//! precisely only because `K`'s upper bound mentions `KK`
//! (`min(KK + T - 1, N - 1)`). A naive per-variable interval analysis
//! loses that correlation and reports `[-(N-1), N-1]`. Instead the
//! extremum of a subscript is computed by *recursive bound
//! substitution*: walking the enclosing loops innermost-out, each
//! occurrence of a loop variable is replaced by the bound alternatives
//! that extremize it, and residue guards (`IF (I + 1 <= N - 1)`)
//! contribute additional upper-bound alternatives. What remains mentions
//! only parameters and evaluates to an integer through the binding; the
//! upper bound is the minimum over upper alternatives (and dually for
//! the lower bound).

use crate::{DiagCode, Sink};
use eco_ir::pretty::{affine_to_string, bound_to_string, ref_to_string};
use eco_ir::{AffineExpr, ArrayRef, Bound, Cond, Program, Stmt, VarId};

/// One entry of the loop context enclosing a statement.
#[derive(Debug, Clone)]
pub enum Ctx {
    /// An enclosing counted loop.
    Loop {
        /// Loop variable.
        var: VarId,
        /// Lower bound.
        lo: Bound,
        /// Upper bound (inclusive; `min` clamps for tile edges).
        hi: Bound,
        /// Step.
        step: i64,
    },
    /// An enclosing guard `lhs <= rhs` (unroll residue cleanup).
    Guard(Cond),
}

/// Walks every statement with its enclosing context, pre-order.
pub(crate) fn walk_ctx<'p>(
    stmts: &'p [Stmt],
    ctx: &mut Vec<Ctx>,
    f: &mut impl FnMut(&'p Stmt, &[Ctx]),
) {
    for s in stmts {
        f(s, ctx);
        match s {
            Stmt::For(l) => {
                ctx.push(Ctx::Loop {
                    var: l.var,
                    lo: l.lo.clone(),
                    hi: l.hi.clone(),
                    step: l.step,
                });
                walk_ctx(&l.body, ctx, f);
                ctx.pop();
            }
            Stmt::If { cond, then } => {
                ctx.push(Ctx::Guard(cond.clone()));
                walk_ctx(then, ctx, f);
                ctx.pop();
            }
            _ => {}
        }
    }
}

/// Renders the context as indented source-style lines, outermost first.
pub(crate) fn render_ctx(p: &Program, ctx: &[Ctx]) -> Vec<String> {
    ctx.iter()
        .map(|c| match c {
            Ctx::Loop { var, lo, hi, step } => {
                let mut line = format!(
                    "DO {} = {}, {}",
                    p.var(*var).name,
                    bound_to_string(p, lo),
                    bound_to_string(p, hi)
                );
                if *step != 1 {
                    line.push_str(&format!(", {step}"));
                }
                line
            }
            Ctx::Guard(c) => format!(
                "IF ({} <= {})",
                affine_to_string(p, &c.lhs),
                bound_to_string(p, &c.rhs)
            ),
        })
        .collect()
}

/// Caps the alternative set: beyond this the analysis gives up (E007)
/// rather than blowing up. Real pipelines stay far below it.
const MAX_ALTS: usize = 256;

fn eval_params(e: &AffineExpr, env: &impl Fn(VarId) -> Option<i64>) -> Option<i64> {
    let mut acc = e.constant_part();
    for &(v, c) in e.terms() {
        acc += c * env(v)?;
    }
    Some(acc)
}

/// The provable extremum (max if `want_max`, else min) of `e` over the
/// iteration space described by `ctx`, resolved to an integer through
/// `env` (parameter values). `None` when the expression cannot be
/// bounded in terms of known parameters.
pub(crate) fn extreme(
    e: &AffineExpr,
    ctx: &[Ctx],
    env: &impl Fn(VarId) -> Option<i64>,
    want_max: bool,
) -> Option<i64> {
    let mut alts = vec![e.clone()];
    for entry in ctx.iter().rev() {
        match entry {
            Ctx::Guard(cond) if want_max => {
                // lhs <= rhs with a unit coefficient on v bounds v above
                // by rhs - (lhs - v): substitute it in as an extra upper
                // alternative (the original stays; min() picks tighter).
                let mut extra = Vec::new();
                for alt in &alts {
                    for &(v, c) in alt.terms() {
                        if c > 0 && cond.lhs.coeff(v) == 1 {
                            let rest = cond.lhs.clone() - AffineExpr::var(v);
                            for r in cond.rhs.alternatives() {
                                extra.push(alt.subst(v, &(r.clone() - rest.clone())));
                            }
                        }
                    }
                }
                for a in extra {
                    if !alts.contains(&a) {
                        alts.push(a);
                    }
                }
            }
            Ctx::Guard(_) => {}
            Ctx::Loop { var, lo, hi, .. } => {
                let mut next: Vec<AffineExpr> = Vec::new();
                for alt in &alts {
                    let c = alt.coeff(*var);
                    if c == 0 {
                        if !next.contains(alt) {
                            next.push(alt.clone());
                        }
                        continue;
                    }
                    // Positive coefficient maximized at the upper bound;
                    // substituting *each* min-alternative yields a valid
                    // upper bound (the final min recovers tightness), and
                    // dually for the other three sign/direction cases.
                    let b = if (c > 0) == want_max { hi } else { lo };
                    for repl in b.alternatives() {
                        let s = alt.subst(*var, repl);
                        if !next.contains(&s) {
                            next.push(s);
                        }
                    }
                }
                alts = next;
            }
        }
        if alts.len() > MAX_ALTS {
            return None;
        }
    }
    let vals: Option<Vec<i64>> = alts.iter().map(|a| eval_params(a, env)).collect();
    let vals = vals?;
    if want_max {
        vals.into_iter().min()
    } else {
        vals.into_iter().max()
    }
}

/// The provable `[lo, hi]` interval of `e` (None if unresolvable).
pub(crate) fn interval(
    e: &AffineExpr,
    ctx: &[Ctx],
    env: &impl Fn(VarId) -> Option<i64>,
) -> Option<(i64, i64)> {
    Some((extreme(e, ctx, env, false)?, extreme(e, ctx, env, true)?))
}

/// Builds the parameter environment of a program from a name/value
/// binding.
pub(crate) fn param_env<'a>(
    p: &'a Program,
    binding: &'a [(String, i64)],
) -> impl Fn(VarId) -> Option<i64> + 'a {
    move |v: VarId| {
        let name = &p.var(v).name;
        binding
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, value)| value)
    }
}

/// Pass 1 entry point: prove every reference in bounds.
pub(crate) fn check(p: &Program, binding: &[(String, i64)], sink: &mut Sink) {
    let env = param_env(p, binding);
    // Resolve every array extent once up front.
    let mut extents: Vec<Option<Vec<i64>>> = Vec::with_capacity(p.arrays.len());
    for decl in &p.arrays {
        let dims: Option<Vec<i64>> = decl.dims.iter().map(|d| eval_params(d, &env)).collect();
        match dims {
            Some(ds) if ds.iter().all(|&d| d > 0) => extents.push(Some(ds)),
            Some(ds) => {
                sink.push(
                    DiagCode::Malformed,
                    format!("array {} has non-positive extent {ds:?}", decl.name),
                    Vec::new(),
                );
                extents.push(None);
            }
            None => {
                sink.push(
                    DiagCode::Malformed,
                    format!(
                        "array {} extent cannot be resolved from the binding",
                        decl.name
                    ),
                    Vec::new(),
                );
                extents.push(None);
            }
        }
    }

    let check_ref = |r: &ArrayRef, prefetch: bool, ctx: &[Ctx], sink: &mut Sink| {
        sink.checked_refs += 1;
        let Some(dims) = &extents[r.array.index()] else {
            return; // already reported as E007
        };
        let mut disjoint: Option<(usize, i64, i64, i64)> = None;
        let mut oob_dims: Vec<(usize, i64, i64, i64)> = Vec::new();
        for (d, e) in r.idx.iter().enumerate() {
            let Some((lo, hi)) = interval(e, ctx, &env) else {
                sink.push(
                    DiagCode::Malformed,
                    format!("cannot bound subscript {} of {}", d, ref_to_string(p, r)),
                    render_ctx(p, ctx),
                );
                return;
            };
            let extent = dims[d];
            if lo < 0 || hi > extent - 1 {
                oob_dims.push((d, lo, hi, extent));
            }
            if (hi < 0 || lo > extent - 1) && disjoint.is_none() {
                disjoint = Some((d, lo, hi, extent));
            }
        }
        if prefetch {
            // Partial overruns are legal: the engine drops the line.
            if let Some((d, lo, hi, extent)) = disjoint {
                sink.push(
                    DiagCode::PrefetchNeverInBounds,
                    format!(
                        "prefetch {} subscript {} spans [{}, {}], entirely outside [0, {}]",
                        ref_to_string(p, r),
                        d,
                        lo,
                        hi,
                        extent - 1
                    ),
                    render_ctx(p, ctx),
                );
            }
        } else if let Some(&(d, lo, hi, extent)) = oob_dims.first() {
            sink.push(
                DiagCode::OutOfBounds,
                format!(
                    "{} subscript {} spans [{}, {}], outside [0, {}]",
                    ref_to_string(p, r),
                    d,
                    lo,
                    hi,
                    extent - 1
                ),
                render_ctx(p, ctx),
            );
        }
    };

    let mut ctx = Vec::new();
    walk_ctx(&p.body, &mut ctx, &mut |s, ctx| match s {
        Stmt::Store { target, value } => {
            value.for_each_load(&mut |r| check_ref(r, false, ctx, sink));
            check_ref(target, false, ctx, sink);
        }
        Stmt::SetTemp { value, .. } => {
            value.for_each_load(&mut |r| check_ref(r, false, ctx, sink));
        }
        Stmt::Prefetch { target } => check_ref(target, true, ctx, sink),
        Stmt::For(_) | Stmt::If { .. } => {}
    });
}
