//! Pass 4: copy-in coherence.
//!
//! Copy optimization stages a tile of an origin array in a contiguous
//! buffer. Reading the buffer outside the region the fill loops wrote
//! reads garbage ([`DiagCode::CopyRegionNotCovered`]); computing *into*
//! the buffer without ever flushing it back to the origin array drops
//! results ([`DiagCode::MissingWriteBack`]).
//!
//! Fills are recognized by the exact shape `copy_in` emits: a store to
//! the buffer whose value is a pure load of a data array. Coverage is
//! interval containment per dimension: every buffer read's symbolic
//! interval must lie inside the hull of the fill targets' intervals
//! (both resolved under the same parameter binding, so `min`-clamped
//! edge tiles compare exactly). Prefetches of buffers are pass 1's
//! business ([`DiagCode::PrefetchNeverInBounds`]) and are ignored here.

use crate::bounds::{interval, param_env, render_ctx, walk_ctx, Ctx};
use crate::{DiagCode, Sink};
use eco_ir::pretty::ref_to_string;
use eco_ir::{ArrayKind, ArrayRef, Program, ScalarExpr, Stmt};

/// Everything the pass needs to know about one copy buffer.
#[derive(Default)]
struct BufferUse<'p> {
    /// Fill targets: `P[..] = Load origin[..]`.
    fills: Vec<(&'p ArrayRef, Vec<Ctx>)>,
    /// Loads of the buffer (compute reads and write-back reads).
    reads: Vec<(&'p ArrayRef, Vec<Ctx>)>,
    /// Stores to the buffer that are not fills (computed-into).
    computed: Vec<(&'p ArrayRef, Vec<Ctx>)>,
    /// True if some data array receives `= Load P[..]`.
    written_back: bool,
}

fn loads_of<'p>(e: &'p ScalarExpr, out: &mut Vec<&'p ArrayRef>) {
    match e {
        ScalarExpr::Const(_) | ScalarExpr::Temp(_) => {}
        ScalarExpr::Load(r) => out.push(r),
        ScalarExpr::Add(a, b) | ScalarExpr::Sub(a, b) | ScalarExpr::Mul(a, b) => {
            loads_of(a, out);
            loads_of(b, out);
        }
    }
}

/// Pass 4 entry point.
pub(crate) fn check(p: &Program, binding: &[(String, i64)], sink: &mut Sink) {
    let is_buffer = |r: &ArrayRef| p.array(r.array).kind == ArrayKind::CopyBuffer;
    let mut uses: Vec<BufferUse> = p.arrays.iter().map(|_| BufferUse::default()).collect();

    let mut ctx = Vec::new();
    walk_ctx(&p.body, &mut ctx, &mut |s, ctx| match s {
        Stmt::Store { target, value } => {
            let mut loads = Vec::new();
            loads_of(value, &mut loads);
            for r in &loads {
                if is_buffer(r) {
                    uses[r.array.index()].reads.push((*r, ctx.to_vec()));
                }
            }
            if is_buffer(target) {
                let fill = matches!(value, ScalarExpr::Load(r)
                    if p.array(r.array).kind == ArrayKind::Data);
                let entry = &mut uses[target.array.index()];
                if fill {
                    entry.fills.push((target, ctx.to_vec()));
                } else {
                    entry.computed.push((target, ctx.to_vec()));
                }
            } else if loads.iter().any(|r| is_buffer(r)) {
                if let ScalarExpr::Load(r) = value {
                    uses[r.array.index()].written_back = true;
                }
            }
        }
        Stmt::SetTemp { value, .. } => {
            let mut loads = Vec::new();
            loads_of(value, &mut loads);
            for r in loads {
                if is_buffer(r) {
                    uses[r.array.index()].reads.push((r, ctx.to_vec()));
                }
            }
        }
        _ => {}
    });

    let env = param_env(p, binding);
    for (a, used) in uses.iter().enumerate() {
        let decl = &p.arrays[a];
        if decl.kind != ArrayKind::CopyBuffer {
            continue;
        }
        if used.fills.is_empty() {
            if let Some((r, ctx)) = used.reads.first() {
                sink.push(
                    DiagCode::CopyRegionNotCovered,
                    format!(
                        "buffer {} is read (e.g. {}) but never filled from its origin array",
                        decl.name,
                        ref_to_string(p, r),
                    ),
                    render_ctx(p, ctx),
                );
            }
        } else {
            // Per-dimension hull of everything the fills wrote.
            let rank = decl.dims.len();
            let mut hull: Vec<Option<(i64, i64)>> = vec![None; rank];
            for (r, fctx) in &used.fills {
                for (h, idx) in hull.iter_mut().zip(&r.idx) {
                    if let Some((lo, hi)) = interval(idx, fctx, &env) {
                        *h = Some(match *h {
                            Some((a, b)) => (a.min(lo), b.max(hi)),
                            None => (lo, hi),
                        });
                    }
                }
            }
            'reads: for (r, rctx) in &used.reads {
                for (d, (&h, idx)) in hull.iter().zip(&r.idx).enumerate() {
                    let (Some((flo, fhi)), Some((lo, hi))) = (h, interval(idx, rctx, &env)) else {
                        continue; // unboundable: pass 1 reports it
                    };
                    if lo < flo || hi > fhi {
                        sink.push(
                            DiagCode::CopyRegionNotCovered,
                            format!(
                                "{} reads [{}, {}] in dimension {} but the copy fills only [{}, {}]",
                                ref_to_string(p, r),
                                lo,
                                hi,
                                d,
                                flo,
                                fhi,
                            ),
                            render_ctx(p, rctx),
                        );
                        continue 'reads;
                    }
                }
            }
        }
        if !used.computed.is_empty() && !used.written_back {
            let (r, ctx) = &used.computed[0];
            sink.push(
                DiagCode::MissingWriteBack,
                format!(
                    "buffer {} is computed into (e.g. {}) but never written back to its origin array",
                    decl.name,
                    ref_to_string(p, r),
                ),
                render_ctx(p, ctx),
            );
        }
    }
}
