//! Static variant certification: translation validation for the ECO
//! search (DESIGN.md "Static certification").
//!
//! The empirical search measures *generated* programs — compositions of
//! tiling, unroll-and-jam, scalar replacement, copying and prefetching.
//! Each pass is unit-tested dynamically, but the composed artifact was
//! only ever validated by executing it. This crate proves, without
//! executing anything, that an `(original, transformed, binding)` triple
//! is safe and semantics-preserving in four passes:
//!
//! 1. bounds — symbolic affine interval analysis over the loop
//!    context (bounds, `min`/`max` tile clamps, residue guards) proving
//!    every load/store subscript in bounds ([`DiagCode::OutOfBounds`])
//!    and every prefetch not *unconditionally* out of bounds
//!    ([`DiagCode::PrefetchNeverInBounds`]; partial overrun is legal —
//!    the engine drops those lines).
//! 2. dependence preservation — recomputes the original nest's distance
//!    vectors and checks them against the transformed loop structure
//!    (tile controls, unrolled steps), rejecting illegal interchange,
//!    tiling or unroll-and-jam ([`DiagCode::DependenceNotPreserved`]).
//! 3. scalar-replacement soundness — no aliasing store may intervene
//!    between a register's load and its uses/write-back
//!    ([`DiagCode::ScalarReplacementAliased`]).
//! 4. copy-in coherence — the filled region covers every buffer access
//!    and computed-into buffers are written back
//!    ([`DiagCode::CopyRegionNotCovered`],
//!    [`DiagCode::MissingWriteBack`]).
//!
//! The entry point is [`certify`]; the search calls it before measuring
//! any candidate point, and `eco lint` exposes it on the command line.

mod bounds;
mod copycheck;
mod depcheck;
mod scalarcheck;

pub use bounds::Ctx;

use eco_ir::Program;
use std::fmt;

/// Stable diagnostic codes (`ECO-E001` ...), one per certifier check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiagCode {
    /// `ECO-E001`: a load or store subscript can leave its array.
    OutOfBounds,
    /// `ECO-E002`: a prefetch subscript is *never* in bounds (a partial
    /// overrun near the array edge is legal and silently dropped).
    PrefetchNeverInBounds,
    /// `ECO-E003`: the transformed loop structure reorders a data
    /// dependence of the original nest.
    DependenceNotPreserved,
    /// `ECO-E004`: a store may alias an array element cached in a
    /// register between its load and its uses.
    ScalarReplacementAliased,
    /// `ECO-E005`: a copy buffer is accessed outside the filled region.
    CopyRegionNotCovered,
    /// `ECO-E006`: a computed-into copy buffer has no write-back to its
    /// origin array.
    MissingWriteBack,
    /// `ECO-E007`: the triple cannot be analyzed (malformed program,
    /// unresolvable parameter, rank mismatch, non-positive extent).
    Malformed,
}

impl DiagCode {
    /// The stable rendered code.
    pub fn as_str(self) -> &'static str {
        match self {
            DiagCode::OutOfBounds => "ECO-E001",
            DiagCode::PrefetchNeverInBounds => "ECO-E002",
            DiagCode::DependenceNotPreserved => "ECO-E003",
            DiagCode::ScalarReplacementAliased => "ECO-E004",
            DiagCode::CopyRegionNotCovered => "ECO-E005",
            DiagCode::MissingWriteBack => "ECO-E006",
            DiagCode::Malformed => "ECO-E007",
        }
    }

    /// The severity the certifier assigns this code by default.
    pub fn severity(self) -> Severity {
        match self {
            DiagCode::OutOfBounds
            | DiagCode::PrefetchNeverInBounds
            | DiagCode::DependenceNotPreserved
            | DiagCode::ScalarReplacementAliased
            | DiagCode::CopyRegionNotCovered
            | DiagCode::MissingWriteBack
            | DiagCode::Malformed => Severity::Error,
        }
    }

    /// A short human title ("subscript out of bounds", ...).
    pub fn title(self) -> &'static str {
        match self {
            DiagCode::OutOfBounds => "subscript out of bounds",
            DiagCode::PrefetchNeverInBounds => "prefetch never in bounds",
            DiagCode::DependenceNotPreserved => "dependence not preserved",
            DiagCode::ScalarReplacementAliased => "scalar replacement aliased",
            DiagCode::CopyRegionNotCovered => "copy region not covered",
            DiagCode::MissingWriteBack => "missing copy write-back",
            DiagCode::Malformed => "unanalyzable program",
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How serious a diagnostic is. Only [`Severity::Error`] fails
/// certification (and `eco lint`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational note.
    Info,
    /// Suspicious but not disqualifying.
    Warning,
    /// The variant must not be run.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One certifier finding, with the loop context it occurred in
/// (rendered outermost-first, ready for indentation-style printing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: DiagCode,
    /// Severity (errors fail certification).
    pub severity: Severity,
    /// One-line description of the finding.
    pub message: String,
    /// Enclosing loops/guards, outermost first (`DO KK = 0, N - 1, 64`).
    pub context: Vec<String>,
}

impl Diagnostic {
    /// Renders the diagnostic with its loop context indented below it.
    pub fn render(&self) -> String {
        let mut out = format!("{} [{}]: {}\n", self.code, self.severity, self.message);
        for (depth, line) in self.context.iter().enumerate() {
            out.push_str(&"  ".repeat(depth + 1));
            out.push_str(line);
            out.push('\n');
        }
        out
    }
}

/// The result of certifying one `(original, transformed, binding)`
/// triple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// Name of the certified (transformed) program.
    pub program: String,
    /// The parameter binding the proof holds under.
    pub binding: Vec<(String, i64)>,
    /// Load/store/prefetch references whose bounds were proven.
    pub checked_refs: usize,
    /// Non-reduction dependences checked against the transformed nest.
    pub checked_deps: usize,
    /// Findings, in discovery order (pass 1 through pass 4).
    pub diagnostics: Vec<Diagnostic>,
}

impl Certificate {
    /// True if no error-severity diagnostic was found: the variant is
    /// proven safe to execute under the binding.
    pub fn ok(&self) -> bool {
        !self
            .diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// The first error-severity code, if any (what the search reports).
    pub fn first_error(&self) -> Option<DiagCode> {
        self.diagnostics
            .iter()
            .find(|d| d.severity == Severity::Error)
            .map(|d| d.code)
    }

    /// Renders the whole certificate (verdict line plus diagnostics).
    pub fn render(&self) -> String {
        let binding: Vec<String> = self
            .binding
            .iter()
            .map(|(n, v)| format!("{n}={v}"))
            .collect();
        let mut out = format!(
            "{}: {} at {} ({} refs, {} deps checked)\n",
            self.program,
            if self.ok() { "certified" } else { "REJECTED" },
            binding.join(" "),
            self.checked_refs,
            self.checked_deps,
        );
        for d in &self.diagnostics {
            out.push_str(&d.render());
        }
        out
    }
}

/// Internal accumulator shared by the passes.
pub(crate) struct Sink {
    pub diagnostics: Vec<Diagnostic>,
    pub checked_refs: usize,
    pub checked_deps: usize,
}

impl Sink {
    pub(crate) fn push(&mut self, code: DiagCode, message: String, context: Vec<String>) {
        let d = Diagnostic {
            code,
            severity: code.severity(),
            message,
            context,
        };
        if !self.diagnostics.contains(&d) {
            self.diagnostics.push(d);
        }
    }
}

/// Certifies that `transformed` is a safe, dependence-preserving
/// compilation of `original` under the parameter `binding`
/// (name/value pairs; the problem size `N`, typically).
///
/// The proof is per-binding: bounds are resolved to integers through the
/// binding, exactly as the engine's layout would. A variant the search
/// wants to run at several sizes is certified once per size.
///
/// Never panics and never executes the programs; all trouble is
/// reported as [`Diagnostic`]s in the returned [`Certificate`].
pub fn certify(
    original: &Program,
    transformed: &Program,
    binding: &[(String, i64)],
) -> Certificate {
    let mut sink = Sink {
        diagnostics: Vec::new(),
        checked_refs: 0,
        checked_deps: 0,
    };
    match transformed.validate() {
        Ok(()) => {
            bounds::check(transformed, binding, &mut sink);
            depcheck::check(original, transformed, &mut sink);
            scalarcheck::check(transformed, binding, &mut sink);
            copycheck::check(transformed, binding, &mut sink);
        }
        Err(why) => {
            sink.push(
                DiagCode::Malformed,
                format!("program fails validation: {why}"),
                Vec::new(),
            );
        }
    }
    Certificate {
        program: transformed.name.clone(),
        binding: binding.to_vec(),
        checked_refs: sink.checked_refs,
        checked_deps: sink.checked_deps,
        diagnostics: sink.diagnostics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_ir::{AffineExpr, ArrayRef, Loop, Program, ScalarExpr, Stmt};
    use eco_kernels::Kernel;
    use eco_transform::{
        copy_in, insert_prefetch, scalar_replace, tile_nest, unroll_and_jam, CopyDim, CopySpec,
        LoopSel, TileSpec,
    };

    fn bind(n: i64) -> Vec<(String, i64)> {
        vec![("N".to_string(), n)]
    }

    /// The full Figure 1(c) construction (mirrors the transform crate's
    /// differential test): tile all three loops, unroll-and-jam J and I,
    /// scalar-replace C, copy B and A, prefetch the B buffer.
    fn mm_figure_1c() -> (Program, Program) {
        let kern = Kernel::matmul();
        let p = &kern.program;
        let (k, j, i) = (
            p.var_by_name("K").expect("K"),
            p.var_by_name("J").expect("J"),
            p.var_by_name("I").expect("I"),
        );
        let (tiled, controls) = tile_nest(
            p,
            &[
                TileSpec { var: k, tile: 8 },
                TileSpec { var: j, tile: 6 },
                TileSpec { var: i, tile: 4 },
            ],
            &[
                LoopSel::Control(k),
                LoopSel::Control(j),
                LoopSel::Control(i),
                LoopSel::Point(j),
                LoopSel::Point(i),
                LoopSel::Point(k),
            ],
        )
        .expect("tile");
        let (kk, jj, ii) = (controls[0], controls[1], controls[2]);
        let u = unroll_and_jam(&tiled, j, 2).expect("uaj j");
        let u = unroll_and_jam(&u, i, 2).expect("uaj i");
        let sr = scalar_replace(&u, k, Some(32)).expect("scalar");
        let b = sr.array_by_name("B").expect("B");
        let with_b = copy_in(
            &sr,
            &CopySpec {
                at: jj,
                array: b,
                region: vec![
                    CopyDim {
                        lo: AffineExpr::var(kk),
                        extent: 8,
                    },
                    CopyDim {
                        lo: AffineExpr::var(jj),
                        extent: 6,
                    },
                ],
                buffer_name: "P".into(),
            },
        )
        .expect("copy B");
        let a = with_b.array_by_name("A").expect("A");
        let with_a = copy_in(
            &with_b,
            &CopySpec {
                at: ii,
                array: a,
                region: vec![
                    CopyDim {
                        lo: AffineExpr::var(ii),
                        extent: 4,
                    },
                    CopyDim {
                        lo: AffineExpr::var(kk),
                        extent: 8,
                    },
                ],
                buffer_name: "Q".into(),
            },
        )
        .expect("copy A");
        let pbuf = with_a.array_by_name("P").expect("P");
        let transformed = insert_prefetch(&with_a, k, pbuf, 2).expect("prefetch");
        (p.clone(), transformed)
    }

    /// `A[I,J] = A[I-1,J+1] + 1` with the loops in the given order
    /// (outermost first). The flow dependence has distance
    /// `(I: +1, J: -1)`, so (I, J) is legal and (J, I) reverses it.
    fn skew(outer_i: bool) -> Program {
        let mut p = Program::new("skew");
        let n = p.add_param("N");
        let i = p.add_loop_var("I");
        let j = p.add_loop_var("J");
        let a = p.add_array("A", vec![AffineExpr::var(n), AffineExpr::var(n)]);
        let hi = AffineExpr::var(n) - AffineExpr::constant(2);
        let store = Stmt::Store {
            target: ArrayRef::new(a, vec![AffineExpr::var(i), AffineExpr::var(j)]),
            value: ScalarExpr::add(
                ScalarExpr::Load(ArrayRef::new(
                    a,
                    vec![
                        AffineExpr::var(i) - AffineExpr::constant(1),
                        AffineExpr::var(j) + AffineExpr::constant(1),
                    ],
                )),
                ScalarExpr::Const(1.0),
            ),
        };
        let mk = |var, body| {
            Stmt::For(Loop {
                var,
                lo: 1.into(),
                hi: hi.clone().into(),
                step: 1,
                body,
            })
        };
        let (outer, inner) = if outer_i { (i, j) } else { (j, i) };
        p.body.push(mk(outer, vec![mk(inner, vec![store])]));
        p
    }

    #[test]
    fn figure_1c_pipeline_certifies_clean() {
        let (orig, tr) = mm_figure_1c();
        for n in [7, 13, 24] {
            let cert = certify(&orig, &tr, &bind(n));
            assert!(cert.ok(), "N={n}:\n{}", cert.render());
            assert!(cert.checked_refs > 0);
            assert!(cert.checked_deps > 0);
            assert!(cert.render().contains("certified"));
        }
    }

    #[test]
    fn jacobi_scalar_rotation_certifies_clean() {
        let kern = Kernel::jacobi3d();
        let i = kern.program.var_by_name("I").expect("I");
        let sr = scalar_replace(&kern.program, i, Some(32)).expect("rotate");
        let cert = certify(&kern.program, &sr, &bind(9));
        assert!(cert.ok(), "{}", cert.render());
    }

    #[test]
    fn unroll_residue_guards_bound_the_shifted_refs() {
        let kern = Kernel::matmul();
        let i = kern.program.var_by_name("I").expect("I");
        let u = unroll_and_jam(&kern.program, i, 3).expect("uaj");
        // N=7 leaves a residue: C[I+1,J], C[I+2,J] live only under
        // their guards, which the interval analysis must honour.
        let cert = certify(&kern.program, &u, &bind(7));
        assert!(cert.ok(), "{}", cert.render());
    }

    #[test]
    fn shrunk_array_is_flagged_out_of_bounds() {
        let kern = Kernel::matmul();
        let mut bad = kern.program.clone();
        let n = bad.var_by_name("N").expect("N");
        let c = bad.array_by_name("C").expect("C");
        bad.arrays[c.index()].dims = vec![
            AffineExpr::var(n) - AffineExpr::constant(1),
            AffineExpr::var(n) - AffineExpr::constant(1),
        ];
        let cert = certify(&kern.program, &bad, &bind(8));
        assert_eq!(cert.first_error(), Some(DiagCode::OutOfBounds));
        assert!(cert.render().contains("ECO-E001"), "{}", cert.render());
    }

    #[test]
    fn hopeless_prefetch_is_flagged_but_edge_overrun_is_not() {
        let kern = Kernel::matmul();
        let i = kern.program.var_by_name("I").expect("I");
        let a = kern.program.array_by_name("A").expect("A");
        let pf = insert_prefetch(&kern.program, i, a, 8).expect("prefetch");
        // At N=8 the prefetch A[I+8,K] can never land inside the array.
        let cert = certify(&kern.program, &pf, &bind(8));
        assert_eq!(cert.first_error(), Some(DiagCode::PrefetchNeverInBounds));
        // At N=16 it merely overruns near the edge, which the engine
        // drops silently: not a diagnostic.
        let cert = certify(&kern.program, &pf, &bind(16));
        assert!(cert.ok(), "{}", cert.render());
    }

    #[test]
    fn reversed_interchange_is_flagged() {
        let cert = certify(&skew(true), &skew(true), &bind(8));
        assert!(cert.ok(), "identity: {}", cert.render());
        let cert = certify(&skew(true), &skew(false), &bind(8));
        assert_eq!(cert.first_error(), Some(DiagCode::DependenceNotPreserved));
    }

    #[test]
    fn aliasing_store_between_load_and_use_is_flagged() {
        let mut p = Program::new("alias");
        let n = p.add_param("N");
        let i = p.add_loop_var("I");
        let a = p.add_array("A", vec![AffineExpr::var(n)]);
        let b = p.add_array("B", vec![AffineExpr::var(n)]);
        let t = p.add_temp("t");
        p.body.push(Stmt::For(Loop {
            var: i,
            lo: 0.into(),
            hi: (AffineExpr::var(n) - AffineExpr::constant(1)).into(),
            step: 1,
            body: vec![
                Stmt::SetTemp {
                    temp: t,
                    value: ScalarExpr::Load(ArrayRef::new(a, vec![AffineExpr::constant(0)])),
                },
                Stmt::Store {
                    target: ArrayRef::new(a, vec![AffineExpr::constant(0)]),
                    value: ScalarExpr::Const(1.0),
                },
                Stmt::Store {
                    target: ArrayRef::new(b, vec![AffineExpr::var(i)]),
                    value: ScalarExpr::add(ScalarExpr::Temp(t), ScalarExpr::Const(0.0)),
                },
            ],
        }));
        let cert = certify(&p, &p, &bind(8));
        assert_eq!(
            cert.first_error(),
            Some(DiagCode::ScalarReplacementAliased),
            "{}",
            cert.render()
        );
    }

    #[test]
    fn double_write_back_is_flagged() {
        let mut p = Program::new("dwb");
        let n = p.add_param("N");
        let i = p.add_loop_var("I");
        let a = p.add_array("A", vec![AffineExpr::var(n)]);
        let t0 = p.add_temp("t0");
        let t1 = p.add_temp("t1");
        p.body.push(Stmt::For(Loop {
            var: i,
            lo: 0.into(),
            hi: (AffineExpr::var(n) - AffineExpr::constant(1)).into(),
            step: 1,
            body: vec![
                Stmt::SetTemp {
                    temp: t0,
                    value: ScalarExpr::Load(ArrayRef::new(a, vec![AffineExpr::var(i)])),
                },
                Stmt::SetTemp {
                    temp: t1,
                    value: ScalarExpr::add(ScalarExpr::Temp(t0), ScalarExpr::Const(1.0)),
                },
                Stmt::Store {
                    target: ArrayRef::new(a, vec![AffineExpr::var(i)]),
                    value: ScalarExpr::Temp(t0),
                },
                Stmt::Store {
                    target: ArrayRef::new(a, vec![AffineExpr::var(i)]),
                    value: ScalarExpr::Temp(t1),
                },
            ],
        }));
        let cert = certify(&p, &p, &bind(8));
        assert_eq!(
            cert.first_error(),
            Some(DiagCode::ScalarReplacementAliased),
            "{}",
            cert.render()
        );
    }

    /// A trivially analyzable original for the copy-corruption tests.
    fn copy_original() -> Program {
        let mut p = Program::new("copyorig");
        let n = p.add_param("N");
        let i = p.add_loop_var("I");
        let a = p.add_array("A", vec![AffineExpr::var(n)]);
        let b = p.add_array("B", vec![AffineExpr::var(n)]);
        p.body.push(Stmt::For(Loop {
            var: i,
            lo: 0.into(),
            hi: (AffineExpr::var(n) - AffineExpr::constant(1)).into(),
            step: 1,
            body: vec![Stmt::Store {
                target: ArrayRef::new(b, vec![AffineExpr::var(i)]),
                value: ScalarExpr::Load(ArrayRef::new(a, vec![AffineExpr::var(i)])),
            }],
        }));
        p
    }

    #[test]
    fn read_past_filled_region_is_flagged() {
        let orig = copy_original();
        let mut p = orig.clone();
        let a = p.array_by_name("A").expect("A");
        let b = p.array_by_name("B").expect("B");
        let f = p.add_loop_var("F");
        let buf = p.add_copy_buffer("P", vec![AffineExpr::constant(4)]);
        let i = p.var_by_name("I").expect("I");
        p.body = vec![
            // fill covers only [0, 2]
            Stmt::For(Loop {
                var: f,
                lo: 0.into(),
                hi: 2.into(),
                step: 1,
                body: vec![Stmt::Store {
                    target: ArrayRef::new(buf, vec![AffineExpr::var(f)]),
                    value: ScalarExpr::Load(ArrayRef::new(a, vec![AffineExpr::var(f)])),
                }],
            }),
            // read walks [0, 3]
            Stmt::For(Loop {
                var: i,
                lo: 0.into(),
                hi: 3.into(),
                step: 1,
                body: vec![Stmt::Store {
                    target: ArrayRef::new(b, vec![AffineExpr::var(i)]),
                    value: ScalarExpr::Load(ArrayRef::new(buf, vec![AffineExpr::var(i)])),
                }],
            }),
        ];
        let cert = certify(&orig, &p, &bind(8));
        assert_eq!(
            cert.first_error(),
            Some(DiagCode::CopyRegionNotCovered),
            "{}",
            cert.render()
        );
    }

    #[test]
    fn computed_buffer_without_write_back_is_flagged() {
        let orig = copy_original();
        let mut p = orig.clone();
        let buf = p.add_copy_buffer("P", vec![AffineExpr::constant(4)]);
        let g = p.add_loop_var("G");
        p.body.push(Stmt::For(Loop {
            var: g,
            lo: 0.into(),
            hi: 3.into(),
            step: 1,
            body: vec![Stmt::Store {
                target: ArrayRef::new(buf, vec![AffineExpr::var(g)]),
                value: ScalarExpr::Const(1.0),
            }],
        }));
        let cert = certify(&orig, &p, &bind(8));
        assert_eq!(
            cert.first_error(),
            Some(DiagCode::MissingWriteBack),
            "{}",
            cert.render()
        );
    }

    #[test]
    fn unresolved_binding_is_malformed() {
        let kern = Kernel::matmul();
        let cert = certify(&kern.program, &kern.program, &[]);
        assert_eq!(cert.first_error(), Some(DiagCode::Malformed));
    }

    #[test]
    fn diagnostic_codes_are_distinct_and_stable() {
        let codes = [
            DiagCode::OutOfBounds,
            DiagCode::PrefetchNeverInBounds,
            DiagCode::DependenceNotPreserved,
            DiagCode::ScalarReplacementAliased,
            DiagCode::CopyRegionNotCovered,
            DiagCode::MissingWriteBack,
            DiagCode::Malformed,
        ];
        for (i, c) in codes.iter().enumerate() {
            assert_eq!(c.as_str(), format!("ECO-E00{}", i + 1));
            assert_eq!(c.severity(), Severity::Error);
            assert!(!c.title().is_empty());
        }
    }
}
