//! Execution engines for ECO IR programs.
//!
//! Two execution modes share one layout model ([`ArrayLayout`]):
//!
//! * [`interpret`] runs a program numerically over [`Storage`] — the
//!   semantic oracle used to verify that every transformation preserves
//!   program meaning;
//! * [`measure`] runs a program *architecturally*: it generates the exact
//!   memory-access trace and drives the `eco-cachesim` hierarchy,
//!   returning PAPI-like [`Counters`]. This is
//!   the reproduction's substitute for executing candidate variants on
//!   real hardware during the paper's empirical search.
//!
//! Both modes are served by two interchangeable executors: the
//! production [`ExecutablePlan`] bytecode pipeline (lower once per
//! program, replay at every parameter point, batch strided runs through
//! the cache simulator) and the tree-walking reference
//! ([`measure_reference`], [`interpret`]) it is differentially tested
//! against. [`measure`] compiles-and-runs a plan; the [`Engine`]
//! additionally memoizes plans per program so batch re-evaluations skip
//! lowering.
//!
//! # Examples
//!
//! Measure naive matrix multiply on the scaled SGI model:
//!
//! ```
//! use eco_exec::{measure, LayoutOptions, Params};
//! use eco_ir::{AffineExpr, ArrayRef, Loop, Program, ScalarExpr, Stmt};
//! use eco_machine::MachineDesc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut p = Program::new("stream");
//! let n = p.add_param("N");
//! let i = p.add_loop_var("I");
//! let a = p.add_array("A", vec![AffineExpr::var(n)]);
//! let r = ArrayRef::new(a, vec![AffineExpr::var(i)]);
//! p.body.push(Stmt::For(Loop {
//!     var: i,
//!     lo: 0.into(),
//!     hi: (AffineExpr::var(n) - AffineExpr::constant(1)).into(),
//!     step: 1,
//!     body: vec![Stmt::Store {
//!         target: r.clone(),
//!         value: ScalarExpr::add(ScalarExpr::Load(r), ScalarExpr::Const(1.0)),
//!     }],
//! }));
//! let params = Params::new().with_named(&p, "N", 1024)?;
//! let machine = MachineDesc::sgi_r10000().scaled(32);
//! let c = measure(&p, &params, &machine, &LayoutOptions::default())?;
//! assert_eq!(c.loads, 1024);
//! assert_eq!(c.stores, 1024);
//! assert_eq!(c.flops, 1024);
//! # Ok(())
//! # }
//! ```

mod engine;
mod error;
mod interp;
mod layout;
mod plan;
mod trace;

pub use engine::{
    program_fingerprint, Engine, EngineConfig, EngineStats, EvalJob, EvalKey, Evaluator,
    ExecBackend,
};
pub use error::ExecError;
pub use interp::interpret;
pub use layout::{ArrayLayout, LayoutOptions, Params, Storage};
pub use plan::{measure, measure_attributed, ExecutablePlan, LoweringStats};
pub use trace::{measure_attributed_reference, measure_reference};

/// The structured observability layer (spans, events, deterministic JSON
/// manifests) the engine and search write through; re-exported so
/// downstream crates need no direct `eco-events` dependency.
pub use eco_events as events;

/// The persistent result store backing [`EngineConfig::store`];
/// re-exported so downstream crates (the service layer, store
/// maintenance commands) need no direct `eco-store` dependency.
pub use eco_store as store;

/// The one canonical counter type: `eco-cachesim` produces it, everything
/// downstream (search, baselines, benches) should import it from here so
/// call sites no longer juggle two counter structs.
pub use eco_cachesim::{AccessKind, Counters, SimStats, TagCounters};

#[cfg(test)]
mod tests {
    use super::*;
    use eco_ir::{AffineExpr, ArrayRef, Bound, Cond, Loop, Program, ScalarExpr, Stmt};
    use eco_machine::MachineDesc;

    /// `C[I,J] += A[I,K] * B[K,J]` over the KJI order of Figure 1(a).
    fn naive_mm() -> Program {
        let mut p = Program::new("mm");
        let n = p.add_param("N");
        let (k, j, i) = (
            p.add_loop_var("K"),
            p.add_loop_var("J"),
            p.add_loop_var("I"),
        );
        let a = p.add_array("A", vec![AffineExpr::var(n), AffineExpr::var(n)]);
        let b = p.add_array("B", vec![AffineExpr::var(n), AffineExpr::var(n)]);
        let c = p.add_array("C", vec![AffineExpr::var(n), AffineExpr::var(n)]);
        let c_ref = ArrayRef::new(c, vec![AffineExpr::var(i), AffineExpr::var(j)]);
        let hi: Bound = (AffineExpr::var(n) - AffineExpr::constant(1)).into();
        let store = Stmt::Store {
            target: c_ref.clone(),
            value: ScalarExpr::add(
                ScalarExpr::Load(c_ref),
                ScalarExpr::mul(
                    ScalarExpr::Load(ArrayRef::new(
                        a,
                        vec![AffineExpr::var(i), AffineExpr::var(k)],
                    )),
                    ScalarExpr::Load(ArrayRef::new(
                        b,
                        vec![AffineExpr::var(k), AffineExpr::var(j)],
                    )),
                ),
            ),
        };
        let mk = |var, body| {
            Stmt::For(Loop {
                var,
                lo: 0.into(),
                hi: hi.clone(),
                step: 1,
                body,
            })
        };
        let nest = mk(k, vec![mk(j, vec![mk(i, vec![store])])]);
        p.body.push(nest);
        p
    }

    fn params_n(p: &Program, n: i64) -> Params {
        Params::new().with_named(p, "N", n).expect("N exists")
    }

    #[test]
    fn interpret_matches_direct_matmul() {
        let p = naive_mm();
        let n = 13usize;
        let params = params_n(&p, n as i64);
        let layout = ArrayLayout::new(&p, &params, &LayoutOptions::default()).expect("layout");
        let mut st = Storage::seeded(&layout, 42);
        let a_id = p.array_by_name("A").expect("A");
        let b_id = p.array_by_name("B").expect("B");
        let c_id = p.array_by_name("C").expect("C");
        // Direct column-major reference computation.
        let (a, b, c0) = (
            st.array(a_id).to_vec(),
            st.array(b_id).to_vec(),
            st.array(c_id).to_vec(),
        );
        let mut want = c0.clone();
        for k in 0..n {
            for j in 0..n {
                for i in 0..n {
                    want[i + j * n] += a[i + k * n] * b[k + j * n];
                }
            }
        }
        interpret(&p, &params, &layout, &mut st).expect("interpret");
        let got = st.array(c_id);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-12, "{g} vs {w}");
        }
    }

    #[test]
    fn measure_counts_accesses_and_flops() {
        let p = naive_mm();
        let n = 16i64;
        let params = params_n(&p, n);
        let machine = MachineDesc::sgi_r10000();
        let c = measure(&p, &params, &machine, &LayoutOptions::default()).expect("measure");
        let n3 = (n * n * n) as u64;
        assert_eq!(c.loads, 3 * n3);
        assert_eq!(c.stores, n3);
        assert_eq!(c.flops, 2 * n3);
        // With N=16, everything fits in the full-size 32KB L1:
        // misses are compulsory only (3 arrays * 2KB / 32B line = 192 lines).
        assert_eq!(c.cache_misses[0], 3 * 16 * 16 * 8 / 32);
    }

    #[test]
    fn measure_larger_matrices_miss_more() {
        let p = naive_mm();
        let machine = MachineDesc::sgi_r10000().scaled(32); // 1KB L1, 32KB L2
        let small =
            measure(&p, &params_n(&p, 4), &machine, &LayoutOptions::default()).expect("small");
        let big = measure(&p, &params_n(&p, 64), &machine, &LayoutOptions::default()).expect("big");
        let small_rate = small.cache_misses[0] as f64 / small.loads as f64;
        let big_rate = big.cache_misses[0] as f64 / big.loads as f64;
        assert!(
            big_rate > 3.0 * small_rate,
            "{big_rate} should dwarf {small_rate}"
        );
        assert!(big.mflops(machine.clock_mhz) < small.mflops(machine.clock_mhz));
    }

    #[test]
    fn out_of_bounds_store_reported() {
        let mut p = Program::new("oob");
        let i = p.add_loop_var("I");
        let a = p.add_array("A", vec![AffineExpr::constant(4)]);
        p.body.push(Stmt::For(Loop {
            var: i,
            lo: 0.into(),
            hi: 4.into(), // one past the end
            step: 1,
            body: vec![Stmt::Store {
                target: ArrayRef::new(a, vec![AffineExpr::var(i)]),
                value: ScalarExpr::Const(1.0),
            }],
        }));
        let params = Params::new();
        let layout = ArrayLayout::new(&p, &params, &LayoutOptions::default()).expect("layout");
        let mut st = Storage::zeroed(&layout);
        let err = interpret(&p, &params, &layout, &mut st).expect_err("oob");
        match err {
            ExecError::OutOfBounds { array, indices, .. } => {
                assert_eq!(array, "A");
                assert_eq!(indices, vec![4]);
            }
            other => panic!("unexpected error {other}"),
        }
        let machine = MachineDesc::sgi_r10000();
        assert!(measure(&p, &params, &machine, &LayoutOptions::default()).is_err());
    }

    #[test]
    fn out_of_bounds_prefetch_ignored() {
        let mut p = Program::new("pf");
        let i = p.add_loop_var("I");
        let a = p.add_array("A", vec![AffineExpr::constant(4)]);
        p.body.push(Stmt::For(Loop {
            var: i,
            lo: 0.into(),
            hi: 3.into(),
            step: 1,
            body: vec![Stmt::Prefetch {
                target: ArrayRef::new(a, vec![AffineExpr::var(i) + AffineExpr::constant(2)]),
            }],
        }));
        let machine = MachineDesc::sgi_r10000();
        let c =
            measure(&p, &Params::new(), &machine, &LayoutOptions::default()).expect("prefetch ok");
        // i=0,1 prefetch in bounds; i=2,3 out of bounds and dropped.
        assert_eq!(c.prefetches, 2);
    }

    #[test]
    fn unbound_param_is_an_error() {
        let p = naive_mm();
        let err = measure(
            &p,
            &Params::new(),
            &MachineDesc::sgi_r10000(),
            &LayoutOptions::default(),
        )
        .expect_err("must fail");
        assert!(
            matches!(err, ExecError::UnboundParam(ref n) if n == "N"),
            "{err}"
        );
    }

    #[test]
    fn guard_limits_execution() {
        // DO I = 0,9: IF (I <= 4) A[I] = 1
        let mut p = Program::new("guard");
        let i = p.add_loop_var("I");
        let a = p.add_array("A", vec![AffineExpr::constant(10)]);
        p.body.push(Stmt::For(Loop {
            var: i,
            lo: 0.into(),
            hi: 9.into(),
            step: 1,
            body: vec![Stmt::If {
                cond: Cond::le(AffineExpr::var(i), AffineExpr::constant(4)),
                then: vec![Stmt::Store {
                    target: ArrayRef::new(a, vec![AffineExpr::var(i)]),
                    value: ScalarExpr::Const(1.0),
                }],
            }],
        }));
        let params = Params::new();
        let layout = ArrayLayout::new(&p, &params, &LayoutOptions::default()).expect("layout");
        let mut st = Storage::zeroed(&layout);
        interpret(&p, &params, &layout, &mut st).expect("ok");
        let a_id = p.array_by_name("A").expect("A");
        assert_eq!(st.array(a_id).iter().filter(|&&x| x == 1.0).count(), 5);
        let c = measure(
            &p,
            &params,
            &MachineDesc::sgi_r10000(),
            &LayoutOptions::default(),
        )
        .expect("measure");
        assert_eq!(c.stores, 5);
    }

    #[test]
    fn temps_model_registers_no_traffic() {
        // t = A[0]; DO I: B[I] = t  -- one load total.
        let mut p = Program::new("temps");
        let i = p.add_loop_var("I");
        let a = p.add_array("A", vec![AffineExpr::constant(1)]);
        let b = p.add_array("B", vec![AffineExpr::constant(8)]);
        let t = p.add_temp("t");
        p.body.push(Stmt::SetTemp {
            temp: t,
            value: ScalarExpr::Load(ArrayRef::new(a, vec![AffineExpr::constant(0)])),
        });
        p.body.push(Stmt::For(Loop {
            var: i,
            lo: 0.into(),
            hi: 7.into(),
            step: 1,
            body: vec![Stmt::Store {
                target: ArrayRef::new(b, vec![AffineExpr::var(i)]),
                value: ScalarExpr::Temp(t),
            }],
        }));
        let c = measure(
            &p,
            &Params::new(),
            &MachineDesc::sgi_r10000(),
            &LayoutOptions::default(),
        )
        .expect("measure");
        assert_eq!(c.loads, 1);
        assert_eq!(c.stores, 8);
    }

    #[test]
    fn layout_is_contiguous_column_major() {
        let p = naive_mm();
        let params = params_n(&p, 4);
        let layout = ArrayLayout::new(&p, &params, &LayoutOptions::default()).expect("layout");
        let a = p.array_by_name("A").expect("A");
        let b = p.array_by_name("B").expect("B");
        assert_eq!(layout.base(a), 0);
        assert_eq!(layout.base(b), 4 * 4 * 8);
        // A[1,2] => flat 1 + 2*4 = 9
        let r = ArrayRef::new(a, vec![AffineExpr::constant(1), AffineExpr::constant(2)]);
        assert_eq!(layout.address(&r, &[]), Some(9 * 8));
    }

    #[test]
    fn layout_padding_separates_arrays() {
        let p = naive_mm();
        let params = params_n(&p, 4);
        let opts = LayoutOptions {
            base_addr: 4096,
            inter_array_pad_bytes: 64,
        };
        let layout = ArrayLayout::new(&p, &params, &opts).expect("layout");
        let a = p.array_by_name("A").expect("A");
        let b = p.array_by_name("B").expect("B");
        assert_eq!(layout.base(a), 4096);
        assert_eq!(layout.base(b), 4096 + 128 + 64);
    }

    #[test]
    fn seeded_storage_is_deterministic_and_varied() {
        let p = naive_mm();
        let params = params_n(&p, 8);
        let layout = ArrayLayout::new(&p, &params, &LayoutOptions::default()).expect("layout");
        let s1 = Storage::seeded(&layout, 7);
        let s2 = Storage::seeded(&layout, 7);
        let s3 = Storage::seeded(&layout, 8);
        let a = p.array_by_name("A").expect("A");
        assert_eq!(s1.array(a), s2.array(a));
        assert_ne!(s1.array(a), s3.array(a));
        assert!(s1.array(a).iter().all(|x| x.abs() <= 1.0));
        assert_eq!(s1.max_abs_diff(&s2, a), 0.0);
    }
}
