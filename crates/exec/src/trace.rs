//! Reference trace-driven measurement of IR programs.
//!
//! This walker executes the *control* of a program (loops and guards),
//! skips the floating-point arithmetic, and feeds every memory access to
//! the cache simulator, producing the PAPI-like counters the paper's
//! empirical search consumes. Scalar temporaries model registers and
//! generate no memory traffic.
//!
//! Since the execution stack was lowered to a compiled
//! [`ExecutablePlan`](crate::ExecutablePlan), this tree-walker is no
//! longer the production path: it survives as the *semantic oracle*
//! (reachable via `--engine=reference` in the CLIs) that the
//! differential tests hold the bytecode executor against, bit for bit.

use crate::error::ExecError;
use crate::layout::{ArrayLayout, LayoutOptions, Params};
use eco_cachesim::{AccessKind, Counters, MemoryHierarchy};
use eco_ir::{Program, ScalarExpr, Stmt, VarId};
use eco_machine::MachineDesc;

struct Tracer<'a> {
    program: &'a Program,
    layout: &'a ArrayLayout,
    env: Vec<i64>,
    hier: MemoryHierarchy,
    /// Attribute misses per array id (slower; used by the analysis
    /// tooling, not the search).
    attribute: bool,
}

impl Tracer<'_> {
    #[inline]
    fn access(&mut self, r: &eco_ir::ArrayRef, kind: AccessKind) -> Result<(), ExecError> {
        match self.layout.address(r, &self.env) {
            Some(addr) => {
                if self.attribute {
                    self.hier.access_tagged(addr, kind, r.array.index());
                } else {
                    self.hier.access(addr, kind);
                }
                Ok(())
            }
            // Out-of-bounds prefetches are legal no-ops (the paper's
            // prefetch code runs past tile edges); demand accesses are not.
            None if matches!(kind, AccessKind::Prefetch) => Ok(()),
            None => Err(ExecError::OutOfBounds {
                array: self.program.array(r.array).name.clone(),
                indices: r
                    .idx
                    .iter()
                    .map(|e| e.eval(&|v: VarId| self.env[v.index()]))
                    .collect(),
                extents: self.layout.extents(r.array).to_vec(),
            }),
        }
    }

    fn trace_value(&mut self, e: &ScalarExpr) -> Result<(), ExecError> {
        match e {
            ScalarExpr::Const(_) | ScalarExpr::Temp(_) => Ok(()),
            ScalarExpr::Load(r) => self.access(r, AccessKind::Load),
            ScalarExpr::Add(a, b) | ScalarExpr::Sub(a, b) | ScalarExpr::Mul(a, b) => {
                self.trace_value(a)?;
                self.trace_value(b)
            }
        }
    }

    fn run(&mut self, stmts: &[Stmt]) -> Result<(), ExecError> {
        for s in stmts {
            match s {
                Stmt::For(l) => {
                    let lookup = |v: VarId| self.env[v.index()];
                    let lo = l.lo.eval(&lookup);
                    let hi = l.hi.eval(&lookup);
                    if hi >= lo {
                        let trips = (hi - lo) / l.step + 1;
                        self.hier.add_loop_iterations(trips as u64);
                    }
                    let mut i = lo;
                    while i <= hi {
                        self.env[l.var.index()] = i;
                        self.run(&l.body)?;
                        i += l.step;
                    }
                }
                Stmt::If { cond, then } => {
                    if cond.eval(&|v: VarId| self.env[v.index()]) {
                        self.run(then)?;
                    }
                }
                Stmt::Store { target, value } => {
                    self.trace_value(value)?;
                    self.hier.add_flops(value.flops());
                    self.access(target, AccessKind::Store)?;
                }
                Stmt::SetTemp { value, .. } => {
                    self.trace_value(value)?;
                    self.hier.add_flops(value.flops());
                }
                Stmt::Prefetch { target } => self.access(target, AccessKind::Prefetch)?,
            }
        }
        Ok(())
    }
}

/// Simulates `program` on `machine` with the tree-walking reference
/// tracer and returns the measured counters.
///
/// The compiled [`measure`](crate::measure) is the production path;
/// this walker is the differential oracle it is tested against.
///
/// # Errors
///
/// Fails on unbound parameters, validation errors, or out-of-bounds
/// demand accesses.
pub fn measure_reference(
    program: &Program,
    params: &Params,
    machine: &MachineDesc,
    layout_opts: &LayoutOptions,
) -> Result<Counters, ExecError> {
    run_measurement(program, params, machine, layout_opts, false)
}

/// Like [`measure_reference`], but additionally attributes demand
/// misses to each array: `counters.per_tag[i]` corresponds to array id
/// `i`.
///
/// # Errors
///
/// Same conditions as [`measure_reference`].
pub fn measure_attributed_reference(
    program: &Program,
    params: &Params,
    machine: &MachineDesc,
    layout_opts: &LayoutOptions,
) -> Result<Counters, ExecError> {
    run_measurement(program, params, machine, layout_opts, true)
}

fn run_measurement(
    program: &Program,
    params: &Params,
    machine: &MachineDesc,
    layout_opts: &LayoutOptions,
    attribute: bool,
) -> Result<Counters, ExecError> {
    program.validate().map_err(ExecError::Invalid)?;
    let layout = ArrayLayout::new(program, params, layout_opts)?;
    let env = params.env_for(program)?;
    let mut tracer = Tracer {
        program,
        layout: &layout,
        env,
        hier: MemoryHierarchy::new(machine),
        attribute,
    };
    tracer.run(&program.body)?;
    Ok(tracer.hier.into_counters())
}
