//! Lowering IR programs to a compiled execution plan.
//!
//! The tree-walking [`interpret`](crate::interpret) /
//! [`measure_reference`](crate::measure_reference) pair re-derives
//! everything on every visit: each array reference re-evaluates its
//! affine subscripts through boxed-expression recursion and recomputes
//! its column-major flat index from scratch, and each loop iteration
//! re-dispatches on statement enums. For the affine programs this
//! workspace deals in, all of that structure is static: the address of
//! `A[f(i,j)]` is `base + Σ stride_v · v`, and advancing the innermost
//! loop moves every access site by a *constant* byte stride.
//!
//! [`ExecutablePlan::compile`] exploits this by lowering a validated
//! [`Program`] once into a flat bytecode:
//!
//! * control flow becomes explicit [`Inst`]s driven by a program
//!   counter — no recursion, no `Box` chasing;
//! * every straight-line statement run becomes one block of stack
//!   (register-slot) value micro-ops plus an ordered list of access
//!   sites;
//! * an innermost loop whose whole body is straight-line becomes a
//!   *fused loop*: at entry, each site is bound to `(start address,
//!   per-iteration byte stride, valid-iteration interval)`, after which
//!   iterating is pure pointer arithmetic. Single-site fused loops hand
//!   the whole run to [`MemoryHierarchy::access_run`], which simulates
//!   in O(cache lines touched); multi-site fused loops hand the whole
//!   batch of address streams to [`MemoryHierarchy::access_streams`],
//!   whose struct-of-arrays walker and exact fast-forward windows are
//!   described in DESIGN.md §4.
//!
//! The plan is parameter-symbolic: compilation depends only on the
//! program, so the engine memoizes one plan per program and re-binds it
//! to every `(params, layout)` evaluation point for free. Both
//! execution modes — architectural ([`ExecutablePlan::measure`]) and
//! numeric ([`ExecutablePlan::interpret`]) — replay the *exact* access
//! sequence, counter arithmetic, f64 evaluation order, and
//! out-of-bounds behaviour of the reference walkers; the differential
//! tests in this module and in `tests/props.rs` hold them to
//! bit-identical results.

use crate::error::ExecError;
use crate::layout::{ArrayLayout, LayoutOptions, Params, Storage};
use eco_cachesim::{AccessKind, Counters, MemoryHierarchy, SimStats, StreamSpec};
use eco_ir::{AffineExpr, ArrayId, ArrayRef, Bound, Cond, Program, ScalarExpr, Stmt, VarId};
use eco_machine::MachineDesc;

/// One static memory-access site: an array reference plus the kind of
/// access the program performs there. Sites are listed in trace order.
#[derive(Debug, Clone)]
struct Site {
    array: ArrayId,
    kind: AccessKind,
    idx: Vec<AffineExpr>,
}

/// A value micro-op. Blocks are compiled to postfix form over a stack
/// of f64 slots (the "registers" of the bytecode); sites are referenced
/// by their absolute index in the plan's site table.
#[derive(Debug, Clone, Copy)]
enum VOp {
    /// Push a literal.
    Const(f64),
    /// Push a scalar temporary.
    Temp(u32),
    /// Push the element at site `0`'s bound address.
    Load(u32),
    /// Pop b, pop a, push a + b.
    Add,
    /// Pop b, pop a, push a - b.
    Sub,
    /// Pop b, pop a, push a * b.
    Mul,
    /// Pop a value into the site's bound address.
    Store(u32),
    /// Pop a value into a scalar temporary.
    SetTemp(u32),
}

/// One bytecode instruction. `exit`/`back` are instruction indices.
#[derive(Debug, Clone)]
enum Inst {
    /// Loop header: evaluate bounds, count iterations, enter or skip.
    Loop {
        var: usize,
        lo: Bound,
        hi: Bound,
        step: i64,
        slot: usize,
        exit: usize,
    },
    /// Loop latch: advance the induction variable or fall through.
    End {
        var: usize,
        step: i64,
        slot: usize,
        back: usize,
    },
    /// Guard: fall through when the condition holds, else jump.
    Guard { cond: Cond, exit: usize },
    /// A straight-line statement run.
    Block {
        vops: (u32, u32),
        sites: (u32, u32),
        flops: u64,
    },
    /// An innermost loop whose body is straight-line code under guards
    /// that are invariant in the loop variable, executed natively over
    /// per-site strided address streams. `runs` indexes
    /// [`ExecutablePlan::gruns`]; each run's guard conjunction is
    /// evaluated once at loop entry (the body cannot change it), and
    /// the active runs execute as one fused stream.
    Fused {
        var: usize,
        lo: Bound,
        hi: Bound,
        step: i64,
        runs: (u32, u32),
    },
}

/// One guarded straight-line run inside a fused loop: the leaves of a
/// maximal leaf sequence sharing the same stack of enclosing `If`s.
/// `conds` is that stack (empty for unguarded code); every condition is
/// invariant in the fused loop variable, so one evaluation at loop
/// entry decides the whole loop.
#[derive(Debug, Clone)]
struct GuardedRun {
    conds: Vec<Cond>,
    vops: (u32, u32),
    sites: (u32, u32),
    flops: u64,
}

/// Static facts about one lowering, reported through the engine's
/// `plan_compile` observability event: how much of the program the
/// lowering managed to put on its fast paths.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoweringStats {
    /// Bytecode instructions.
    pub insts: usize,
    /// Static memory-access sites.
    pub sites: usize,
    /// Value micro-ops.
    pub vops: usize,
    /// Innermost loops fused into native strided-stream execution
    /// (`Inst::Fused`) — the lowering's main win.
    pub fused_loops: usize,
    /// Guarded straight-line runs inside fused loops.
    pub guarded_runs: usize,
    /// Guard conditions hoisted out of fused loops (each is evaluated
    /// once at loop entry instead of per iteration).
    pub hoisted_guards: usize,
}

/// A program lowered to flat bytecode, ready to execute at any
/// parameter point.
///
/// Compile once per program ([`ExecutablePlan::compile`]), then execute
/// at as many `(params, layout, machine)` points as needed:
/// [`ExecutablePlan::measure`] runs the cache simulation the search
/// consumes, [`ExecutablePlan::interpret`] runs the numeric semantics.
/// Both match the tree-walking reference implementations bit for bit.
#[derive(Debug, Clone)]
pub struct ExecutablePlan {
    program: Program,
    insts: Vec<Inst>,
    sites: Vec<Site>,
    vops: Vec<VOp>,
    gruns: Vec<GuardedRun>,
    loop_slots: usize,
    max_stack: usize,
}

impl ExecutablePlan {
    /// Validates and lowers `program`.
    ///
    /// # Errors
    ///
    /// Fails with the same [`ExecError::Invalid`] the reference
    /// executors produce for a malformed program.
    pub fn compile(program: &Program) -> Result<ExecutablePlan, ExecError> {
        program.validate().map_err(ExecError::Invalid)?;
        let mut c = Compiler::default();
        c.stmts(&program.body);
        Ok(ExecutablePlan {
            program: program.clone(),
            insts: c.insts,
            sites: c.sites,
            vops: c.vops,
            gruns: c.gruns,
            loop_slots: c.loop_slots,
            max_stack: c.max_stack,
        })
    }

    /// The program this plan was compiled from.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Number of memory-access sites in the bytecode.
    pub fn num_sites(&self) -> usize {
        self.sites.len()
    }

    /// Static lowering statistics for this plan.
    pub fn lowering_stats(&self) -> LoweringStats {
        LoweringStats {
            insts: self.insts.len(),
            sites: self.sites.len(),
            vops: self.vops.len(),
            fused_loops: self
                .insts
                .iter()
                .filter(|i| matches!(i, Inst::Fused { .. }))
                .count(),
            guarded_runs: self.gruns.len(),
            hoisted_guards: self.gruns.iter().map(|g| g.conds.len()).sum(),
        }
    }

    /// Simulates the plan on `machine` and returns the measured
    /// counters — the compiled equivalent of
    /// [`measure_reference`](crate::measure_reference).
    ///
    /// # Errors
    ///
    /// Fails on unbound parameters, bad extents, or out-of-bounds
    /// demand accesses, with payloads identical to the reference.
    pub fn measure(
        &self,
        params: &Params,
        machine: &MachineDesc,
        layout_opts: &LayoutOptions,
    ) -> Result<Counters, ExecError> {
        self.run_measure(params, machine, layout_opts, false)
            .map(|(c, _)| c)
    }

    /// Like [`ExecutablePlan::measure`], but attributes demand misses
    /// per array (`counters.per_tag[i]` is array id `i`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ExecutablePlan::measure`].
    pub fn measure_attributed(
        &self,
        params: &Params,
        machine: &MachineDesc,
        layout_opts: &LayoutOptions,
    ) -> Result<Counters, ExecError> {
        self.run_measure(params, machine, layout_opts, true)
            .map(|(c, _)| c)
    }

    /// Like [`ExecutablePlan::measure`], but also returns the
    /// simulator's fast-forward telemetry ([`SimStats`]) for the run.
    /// The counters are bit-identical to [`ExecutablePlan::measure`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`ExecutablePlan::measure`].
    pub fn measure_with_stats(
        &self,
        params: &Params,
        machine: &MachineDesc,
        layout_opts: &LayoutOptions,
    ) -> Result<(Counters, SimStats), ExecError> {
        self.run_measure(params, machine, layout_opts, false)
    }

    /// Like [`ExecutablePlan::measure_attributed`], but also returns
    /// the simulator's fast-forward telemetry ([`SimStats`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ExecutablePlan::measure`].
    pub fn measure_attributed_with_stats(
        &self,
        params: &Params,
        machine: &MachineDesc,
        layout_opts: &LayoutOptions,
    ) -> Result<(Counters, SimStats), ExecError> {
        self.run_measure(params, machine, layout_opts, true)
    }

    fn run_measure(
        &self,
        params: &Params,
        machine: &MachineDesc,
        layout_opts: &LayoutOptions,
        attribute: bool,
    ) -> Result<(Counters, SimStats), ExecError> {
        let layout = ArrayLayout::new(&self.program, params, layout_opts)?;
        let env = params.env_for(&self.program)?;
        let mut ctx = MeasureCtx {
            plan: self,
            dstrides: elem_strides(&layout),
            layout: &layout,
            env,
            hi_slots: vec![0; self.loop_slots],
            hier: MemoryHierarchy::new(machine),
            attribute,
            runs: Vec::new(),
            streams: Vec::new(),
            active_sites: Vec::new(),
        };
        ctx.run()?;
        Ok(ctx.hier.into_parts())
    }

    /// Numerically executes the plan over `storage` — the compiled
    /// equivalent of [`interpret`](crate::interpret). `storage` must
    /// have been created from an [`ArrayLayout`] for the same program
    /// and parameters.
    ///
    /// On an out-of-bounds error the partially-written contents of
    /// `storage` are unspecified (the reference walker stops mid-loop;
    /// the plan stops at the containing block boundary).
    ///
    /// # Errors
    ///
    /// Fails on unbound parameters or out-of-bounds demand accesses,
    /// with payloads identical to the reference interpreter.
    pub fn interpret(
        &self,
        params: &Params,
        layout: &ArrayLayout,
        storage: &mut Storage,
    ) -> Result<(), ExecError> {
        let env = params.env_for(&self.program)?;
        let mut ctx = NumericCtx {
            plan: self,
            dstrides: elem_strides(layout),
            layout,
            env,
            hi_slots: vec![0; self.loop_slots],
            temps: vec![0.0; self.program.temps.len()],
            stack: Vec::with_capacity(self.max_stack),
            storage,
            runs: Vec::new(),
            flats: Vec::new(),
            active_sites: Vec::new(),
            active_runs: Vec::new(),
        };
        ctx.run()
    }

    /// The out-of-bounds error for `site` under `env` — field-for-field
    /// identical to the reference walkers' payload.
    fn oob(&self, site: &Site, env: &[i64], layout: &ArrayLayout) -> ExecError {
        ExecError::OutOfBounds {
            array: self.program.array(site.array).name.clone(),
            indices: site.idx.iter().map(|e| e.eval_slice(env)).collect(),
            extents: layout.extents(site.array).to_vec(),
        }
    }
}

/// Measures `program` through a freshly compiled [`ExecutablePlan`].
///
/// This is the default measurement path: every engine, CLI, and
/// benchmark goes through the compiled plan. The tree-walking
/// [`measure_reference`](crate::measure_reference) remains available as
/// the differential oracle (`--engine=reference`).
///
/// # Errors
///
/// Fails on validation errors, unbound parameters, bad extents, or
/// out-of-bounds demand accesses.
pub fn measure(
    program: &Program,
    params: &Params,
    machine: &MachineDesc,
    layout_opts: &LayoutOptions,
) -> Result<Counters, ExecError> {
    ExecutablePlan::compile(program)?.measure(params, machine, layout_opts)
}

/// Like [`measure`], but attributes demand misses per array.
///
/// # Errors
///
/// Same conditions as [`measure`].
pub fn measure_attributed(
    program: &Program,
    params: &Params,
    machine: &MachineDesc,
    layout_opts: &LayoutOptions,
) -> Result<Counters, ExecError> {
    ExecutablePlan::compile(program)?.measure_attributed(params, machine, layout_opts)
}

/// Per-array column-major element strides: `dstrides[a][d]` is the
/// distance in elements between neighbours along dimension `d`.
fn elem_strides(layout: &ArrayLayout) -> Vec<Vec<i64>> {
    (0..layout.num_arrays())
        .map(|a| {
            let exts = layout.extents(ArrayId(a as u32));
            let mut ds = Vec::with_capacity(exts.len());
            let mut s = 1i64;
            for &e in exts {
                ds.push(s);
                s *= e;
            }
            ds
        })
        .collect()
}

/// `floor(a / b)` for any sign of `a`, positive or negative `b`.
fn floor_div(a: i64, b: i64) -> i64 {
    let q = a / b;
    if a % b != 0 && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

/// `ceil(a / b)` for any sign of `a`, positive or negative `b`.
fn ceil_div(a: i64, b: i64) -> i64 {
    -floor_div(-a, b)
}

#[derive(Default)]
struct Compiler {
    insts: Vec<Inst>,
    sites: Vec<Site>,
    vops: Vec<VOp>,
    gruns: Vec<GuardedRun>,
    loop_slots: usize,
    max_stack: usize,
    depth: usize,
}

/// True for statements that generate no control flow.
fn is_leaf(s: &Stmt) -> bool {
    matches!(
        s,
        Stmt::Store { .. } | Stmt::SetTemp { .. } | Stmt::Prefetch { .. }
    )
}

/// True when a loop body over `var` can be fused: only leaves and `If`s
/// whose conditions never mention `var` (tile-tail guards in generated
/// code are invariant in the innermost loop). Leaves cannot change the
/// integer environment, so such conditions are constant across the
/// whole loop and can be evaluated once at entry.
fn fusible(var: VarId, stmts: &[Stmt]) -> bool {
    stmts.iter().all(|s| match s {
        Stmt::If { cond, then } => cond_free_of(cond, var) && fusible(var, then),
        s => is_leaf(s),
    })
}

/// True when `cond` does not involve `var`.
fn cond_free_of(cond: &Cond, var: VarId) -> bool {
    cond.lhs.coeff(var) == 0 && bound_free_of(&cond.rhs, var)
}

/// True when `bound` does not involve `var`.
fn bound_free_of(bound: &Bound, var: VarId) -> bool {
    match bound {
        Bound::Affine(e) => e.coeff(var) == 0,
        Bound::Min(es) | Bound::Max(es) => es.iter().all(|e| e.coeff(var) == 0),
    }
}

impl Compiler {
    fn stmts(&mut self, stmts: &[Stmt]) {
        let mut i = 0;
        while i < stmts.len() {
            if is_leaf(&stmts[i]) {
                // Take the maximal straight-line run and compile it to
                // one block.
                let start = i;
                while i < stmts.len() && is_leaf(&stmts[i]) {
                    i += 1;
                }
                let (vops, sites, flops) = self.leaves(&stmts[start..i]);
                self.insts.push(Inst::Block { vops, sites, flops });
                continue;
            }
            match &stmts[i] {
                Stmt::For(l) if fusible(l.var, &l.body) => {
                    let r0 = self.gruns.len() as u32;
                    let mut conds = Vec::new();
                    self.emit_runs(&l.body, &mut conds);
                    self.insts.push(Inst::Fused {
                        var: l.var.index(),
                        lo: l.lo.clone(),
                        hi: l.hi.clone(),
                        step: l.step,
                        runs: (r0, self.gruns.len() as u32),
                    });
                }
                Stmt::For(l) => {
                    let slot = self.loop_slots;
                    self.loop_slots += 1;
                    let header = self.insts.len();
                    self.insts.push(Inst::Loop {
                        var: l.var.index(),
                        lo: l.lo.clone(),
                        hi: l.hi.clone(),
                        step: l.step,
                        slot,
                        exit: usize::MAX, // patched below
                    });
                    self.stmts(&l.body);
                    self.insts.push(Inst::End {
                        var: l.var.index(),
                        step: l.step,
                        slot,
                        back: header + 1,
                    });
                    let exit = self.insts.len();
                    let Inst::Loop { exit: e, .. } = &mut self.insts[header] else {
                        unreachable!("header is a Loop");
                    };
                    *e = exit;
                }
                Stmt::If { cond, then } => {
                    let header = self.insts.len();
                    self.insts.push(Inst::Guard {
                        cond: cond.clone(),
                        exit: usize::MAX, // patched below
                    });
                    self.stmts(then);
                    let exit = self.insts.len();
                    let Inst::Guard { exit: e, .. } = &mut self.insts[header] else {
                        unreachable!("header is a Guard");
                    };
                    *e = exit;
                }
                _ => unreachable!("leaves handled above"),
            }
            i += 1;
        }
    }

    /// Compiles a fusible loop body into guarded runs, in statement
    /// order: maximal leaf sequences under the same `If` stack become
    /// one run each, carrying that stack as their guard conjunction.
    fn emit_runs(&mut self, stmts: &[Stmt], conds: &mut Vec<Cond>) {
        let mut i = 0;
        while i < stmts.len() {
            if is_leaf(&stmts[i]) {
                let start = i;
                while i < stmts.len() && is_leaf(&stmts[i]) {
                    i += 1;
                }
                let (vops, sites, flops) = self.leaves(&stmts[start..i]);
                self.gruns.push(GuardedRun {
                    conds: conds.clone(),
                    vops,
                    sites,
                    flops,
                });
                continue;
            }
            let Stmt::If { cond, then } = &stmts[i] else {
                unreachable!("fusible bodies hold only leaves and Ifs");
            };
            conds.push(cond.clone());
            self.emit_runs(then, conds);
            conds.pop();
            i += 1;
        }
    }

    /// Compiles a straight-line statement run; returns its vop range,
    /// site range (in trace order), and flop count per execution.
    fn leaves(&mut self, stmts: &[Stmt]) -> ((u32, u32), (u32, u32), u64) {
        let v0 = self.vops.len() as u32;
        let s0 = self.sites.len() as u32;
        let mut flops = 0u64;
        for s in stmts {
            match s {
                Stmt::Store { target, value } => {
                    self.value(value);
                    let sid = self.site(target, AccessKind::Store);
                    self.vops.push(VOp::Store(sid));
                    self.depth -= 1;
                    flops += value.flops();
                }
                Stmt::SetTemp { temp, value } => {
                    self.value(value);
                    self.vops.push(VOp::SetTemp(temp.index() as u32));
                    self.depth -= 1;
                    flops += value.flops();
                }
                Stmt::Prefetch { target } => {
                    self.site(target, AccessKind::Prefetch);
                }
                _ => unreachable!("caller passes only leaves"),
            }
        }
        debug_assert_eq!(self.depth, 0, "statements leave the stack empty");
        (
            (v0, self.vops.len() as u32),
            (s0, self.sites.len() as u32),
            flops,
        )
    }

    fn site(&mut self, r: &ArrayRef, kind: AccessKind) -> u32 {
        self.sites.push(Site {
            array: r.array,
            kind,
            idx: r.idx.clone(),
        });
        (self.sites.len() - 1) as u32
    }

    fn push(&mut self, op: VOp) {
        self.vops.push(op);
        self.depth += 1;
        self.max_stack = self.max_stack.max(self.depth);
    }

    /// Post-order value compilation: operand order is preserved, so the
    /// stack machine reproduces the reference interpreter's f64
    /// evaluation (and load) order exactly.
    fn value(&mut self, e: &ScalarExpr) {
        match e {
            ScalarExpr::Const(c) => self.push(VOp::Const(*c)),
            ScalarExpr::Temp(t) => self.push(VOp::Temp(t.index() as u32)),
            ScalarExpr::Load(r) => {
                let sid = self.site(r, AccessKind::Load);
                self.push(VOp::Load(sid));
            }
            ScalarExpr::Add(a, b) => {
                self.value(a);
                self.value(b);
                self.vops.push(VOp::Add);
                self.depth -= 1;
            }
            ScalarExpr::Sub(a, b) => {
                self.value(a);
                self.value(b);
                self.vops.push(VOp::Sub);
                self.depth -= 1;
            }
            ScalarExpr::Mul(a, b) => {
                self.value(a);
                self.value(b);
                self.vops.push(VOp::Mul);
                self.depth -= 1;
            }
        }
    }
}

/// One site of a fused loop, bound to concrete addresses for one loop
/// entry: `addr` advances by `stride` per iteration, and the access is
/// performed only for iterations `t` in `[vlo, vhi]` (demand sites are
/// pre-checked to cover the whole trip count).
#[derive(Debug, Clone, Copy)]
struct RunSite {
    /// Current address/flat-index (bytes for measurement, elements for
    /// numeric execution). May be out of range outside `[vlo, vhi]`.
    addr: i64,
    /// Per-iteration delta (bytes or elements).
    stride: i64,
    /// First valid 0-based iteration.
    vlo: i64,
    /// Last valid 0-based iteration.
    vhi: i64,
    kind: AccessKind,
    tag: usize,
}

/// Binds the listed sites of a fused loop at entry (`env[var]` must
/// already hold the lower bound). `unit` is 8 for byte addressing
/// (measurement) or 1 for element addressing (numeric execution); the
/// base address is included only for `unit == 8`.
#[allow(clippy::too_many_arguments)]
fn bind_sites(
    plan: &ExecutablePlan,
    layout: &ArrayLayout,
    dstrides: &[Vec<i64>],
    env: &[i64],
    var: usize,
    step: i64,
    trips: i64,
    site_ids: &[u32],
    unit: i64,
    runs: &mut Vec<RunSite>,
) {
    runs.clear();
    for &sid in site_ids {
        let site = &plan.sites[sid as usize];
        let exts = layout.extents(site.array);
        let ds = &dstrides[site.array.index()];
        let mut flat = 0i64;
        let mut stride = 0i64;
        let mut vlo = 0i64;
        let mut vhi = trips - 1;
        for d in 0..exts.len() {
            let a = site.idx[d].eval_slice(env);
            let b = site.idx[d].coeff(VarId(var as u32)) * step;
            flat += a * ds[d];
            stride += b * ds[d];
            let e = exts[d];
            if b == 0 {
                if a < 0 || a >= e {
                    // never valid
                    vlo = 1;
                    vhi = 0;
                }
            } else if b > 0 {
                vlo = vlo.max(ceil_div(-a, b));
                vhi = vhi.min(floor_div(e - 1 - a, b));
            } else {
                vlo = vlo.max(ceil_div(e - 1 - a, b));
                vhi = vhi.min(floor_div(-a, b));
            }
        }
        let base = if unit == 8 {
            layout.base(site.array) as i64
        } else {
            0
        };
        runs.push(RunSite {
            addr: base + flat * unit,
            stride: stride * unit,
            vlo,
            vhi,
            kind: site.kind,
            tag: site.array.index(),
        });
    }
}

/// The first out-of-bounds demand access of a fused loop in trace
/// order, as `(iteration, site position)`, or `None` if every demand
/// site covers the whole trip count.
fn first_oob(runs: &[RunSite], trips: i64) -> Option<(i64, usize)> {
    let mut bad: Option<(i64, usize)> = None;
    for (pos, r) in runs.iter().enumerate() {
        if matches!(r.kind, AccessKind::Prefetch) {
            continue;
        }
        let t = if r.vlo > 0 {
            0
        } else if r.vhi < trips - 1 {
            r.vhi + 1
        } else {
            continue;
        };
        if bad.is_none_or(|(bt, bp)| (t, pos) < (bt, bp)) {
            bad = Some((t, pos));
        }
    }
    bad
}

/// Architectural (cache-simulation) executor state.
struct MeasureCtx<'a> {
    plan: &'a ExecutablePlan,
    layout: &'a ArrayLayout,
    dstrides: Vec<Vec<i64>>,
    env: Vec<i64>,
    hi_slots: Vec<i64>,
    hier: MemoryHierarchy,
    attribute: bool,
    /// Reusable fused-loop binding scratch.
    runs: Vec<RunSite>,
    /// Reusable batch scratch handed to the simulator.
    streams: Vec<StreamSpec>,
    /// Reusable scratch: site ids of the guard-active runs, in order.
    active_sites: Vec<u32>,
}

impl MeasureCtx<'_> {
    fn run(&mut self) -> Result<(), ExecError> {
        let insts = &self.plan.insts;
        let mut pc = 0;
        while pc < insts.len() {
            match &insts[pc] {
                Inst::Loop {
                    var,
                    lo,
                    hi,
                    step,
                    slot,
                    exit,
                } => {
                    let l = lo.eval_slice(&self.env);
                    let h = hi.eval_slice(&self.env);
                    if h < l {
                        pc = *exit;
                        continue;
                    }
                    self.hier.add_loop_iterations(((h - l) / step + 1) as u64);
                    self.env[*var] = l;
                    self.hi_slots[*slot] = h;
                }
                Inst::End {
                    var,
                    step,
                    slot,
                    back,
                } => {
                    let next = self.env[*var] + step;
                    if next <= self.hi_slots[*slot] {
                        self.env[*var] = next;
                        pc = *back;
                        continue;
                    }
                }
                Inst::Guard { cond, exit } => {
                    if !cond.eval_slice(&self.env) {
                        pc = *exit;
                        continue;
                    }
                }
                Inst::Block { sites, flops, .. } => {
                    for sid in sites.0..sites.1 {
                        self.access_site(sid)?;
                    }
                    if *flops > 0 {
                        self.hier.add_flops(*flops);
                    }
                }
                Inst::Fused {
                    var,
                    lo,
                    hi,
                    step,
                    runs,
                } => {
                    self.fused(*var, lo, hi, *step, *runs)?;
                }
            }
            pc += 1;
        }
        Ok(())
    }

    /// One access through the generic (non-fused) path: per-dimension
    /// bounds check plus Horner flat indexing, like the reference but
    /// over precompiled subscripts.
    fn access_site(&mut self, sid: u32) -> Result<(), ExecError> {
        let site = &self.plan.sites[sid as usize];
        let exts = self.layout.extents(site.array);
        let mut flat = 0i64;
        for d in (0..exts.len()).rev() {
            let v = site.idx[d].eval_slice(&self.env);
            if v < 0 || v >= exts[d] {
                // Out-of-bounds prefetches are legal no-ops (prefetch
                // code runs past tile edges); demand accesses are not.
                return if matches!(site.kind, AccessKind::Prefetch) {
                    Ok(())
                } else {
                    Err(self.plan.oob(site, &self.env, self.layout))
                };
            }
            flat = flat * exts[d] + v;
        }
        let addr = self.layout.base(site.array) + flat as u64 * 8;
        if self.attribute {
            self.hier.access_tagged(addr, site.kind, site.array.index());
        } else {
            self.hier.access(addr, site.kind);
        }
        Ok(())
    }

    fn fused(
        &mut self,
        var: usize,
        lo: &Bound,
        hi: &Bound,
        step: i64,
        rrange: (u32, u32),
    ) -> Result<(), ExecError> {
        let l = lo.eval_slice(&self.env);
        let h = hi.eval_slice(&self.env);
        if h < l {
            return Ok(());
        }
        let trips = (h - l) / step + 1;
        self.hier.add_loop_iterations(trips as u64);
        self.env[var] = l;
        // Guards are invariant in `var`: decide each run once at entry.
        let mut sids = std::mem::take(&mut self.active_sites);
        sids.clear();
        let mut flops = 0u64;
        for g in &self.plan.gruns[rrange.0 as usize..rrange.1 as usize] {
            if g.conds.iter().all(|c| c.eval_slice(&self.env)) {
                sids.extend(g.sites.0..g.sites.1);
                flops += g.flops;
            }
        }
        let mut runs = std::mem::take(&mut self.runs);
        bind_sites(
            self.plan,
            self.layout,
            &self.dstrides,
            &self.env,
            var,
            step,
            trips,
            &sids,
            8,
            &mut runs,
        );
        if let Some((t, pos)) = first_oob(&runs, trips) {
            self.env[var] = l + t * step;
            let site = &self.plan.sites[sids[pos] as usize];
            self.active_sites = sids;
            return Err(self.plan.oob(site, &self.env, self.layout));
        }
        self.active_sites = sids;
        if flops > 0 {
            self.hier.add_flops(flops * trips as u64);
        }
        // Hand the whole loop to the simulator as one batch of strided
        // streams: demand sites cover the full trip range (checked
        // above), prefetch sites may be valid only on a sub-interval.
        // The simulator coalesces line runs and fast-forwards
        // provably-resident windows — bit-identical to the per-access
        // interleaved walk.
        let mut streams = std::mem::take(&mut self.streams);
        streams.clear();
        streams.extend(
            runs.iter()
                .filter(|r| r.vlo.max(0) <= r.vhi.min(trips - 1))
                .map(|r| StreamSpec {
                    base: r.addr,
                    stride: r.stride,
                    vlo: r.vlo.max(0),
                    vhi: r.vhi.min(trips - 1),
                    kind: r.kind,
                    tag: r.tag as u32,
                }),
        );
        self.hier.access_streams(&streams, trips, self.attribute);
        self.streams = streams;
        self.runs = runs;
        self.env[var] = l + (trips - 1) * step;
        Ok(())
    }
}

/// Numeric executor state.
struct NumericCtx<'a> {
    plan: &'a ExecutablePlan,
    layout: &'a ArrayLayout,
    dstrides: Vec<Vec<i64>>,
    env: Vec<i64>,
    hi_slots: Vec<i64>,
    temps: Vec<f64>,
    stack: Vec<f64>,
    storage: &'a mut Storage,
    runs: Vec<RunSite>,
    /// Per-site flat element indices of the block being executed,
    /// indexed relative to the block's first site.
    flats: Vec<i64>,
    /// Reusable scratch: site ids of the guard-active runs, in order.
    active_sites: Vec<u32>,
    /// Reusable scratch: indices into `plan.gruns` of the active runs.
    active_runs: Vec<u32>,
}

impl NumericCtx<'_> {
    fn run(&mut self) -> Result<(), ExecError> {
        let insts = &self.plan.insts;
        let mut pc = 0;
        while pc < insts.len() {
            match &insts[pc] {
                Inst::Loop {
                    var,
                    lo,
                    hi,
                    step: _,
                    slot,
                    exit,
                } => {
                    let l = lo.eval_slice(&self.env);
                    let h = hi.eval_slice(&self.env);
                    if h < l {
                        pc = *exit;
                        continue;
                    }
                    self.env[*var] = l;
                    self.hi_slots[*slot] = h;
                }
                Inst::End {
                    var,
                    step,
                    slot,
                    back,
                } => {
                    let next = self.env[*var] + step;
                    if next <= self.hi_slots[*slot] {
                        self.env[*var] = next;
                        pc = *back;
                        continue;
                    }
                }
                Inst::Guard { cond, exit } => {
                    if !cond.eval_slice(&self.env) {
                        pc = *exit;
                        continue;
                    }
                }
                Inst::Block { vops, sites, .. } => {
                    self.block(*vops, *sites)?;
                }
                Inst::Fused {
                    var,
                    lo,
                    hi,
                    step,
                    runs,
                } => {
                    self.fused(*var, lo, hi, *step, *runs)?;
                }
            }
            pc += 1;
        }
        Ok(())
    }

    fn block(&mut self, vops: (u32, u32), sites: (u32, u32)) -> Result<(), ExecError> {
        let mut flats = std::mem::take(&mut self.flats);
        flats.clear();
        for sid in sites.0..sites.1 {
            let site = &self.plan.sites[sid as usize];
            if matches!(site.kind, AccessKind::Prefetch) {
                // no numeric effect; never evaluated, never checked
                flats.push(0);
                continue;
            }
            let exts = self.layout.extents(site.array);
            let mut flat = 0i64;
            for d in (0..exts.len()).rev() {
                let v = site.idx[d].eval_slice(&self.env);
                if v < 0 || v >= exts[d] {
                    self.flats = flats;
                    return Err(self.plan.oob(site, &self.env, self.layout));
                }
                flat = flat * exts[d] + v;
            }
            flats.push(flat);
        }
        self.exec_vops(vops, &flats, sites.0);
        self.flats = flats;
        Ok(())
    }

    fn fused(
        &mut self,
        var: usize,
        lo: &Bound,
        hi: &Bound,
        step: i64,
        rrange: (u32, u32),
    ) -> Result<(), ExecError> {
        let l = lo.eval_slice(&self.env);
        let h = hi.eval_slice(&self.env);
        if h < l {
            return Ok(());
        }
        let trips = (h - l) / step + 1;
        self.env[var] = l;
        // Guards are invariant in `var`: decide each run once at entry.
        let mut sids = std::mem::take(&mut self.active_sites);
        let mut active = std::mem::take(&mut self.active_runs);
        sids.clear();
        active.clear();
        for ri in rrange.0..rrange.1 {
            let g = &self.plan.gruns[ri as usize];
            if g.conds.iter().all(|c| c.eval_slice(&self.env)) {
                sids.extend(g.sites.0..g.sites.1);
                active.push(ri);
            }
        }
        let mut runs = std::mem::take(&mut self.runs);
        bind_sites(
            self.plan,
            self.layout,
            &self.dstrides,
            &self.env,
            var,
            step,
            trips,
            &sids,
            1,
            &mut runs,
        );
        if let Some((t, pos)) = first_oob(&runs, trips) {
            self.env[var] = l + t * step;
            let site = &self.plan.sites[sids[pos] as usize];
            let err = self.plan.oob(site, &self.env, self.layout);
            self.active_sites = sids;
            self.active_runs = active;
            self.runs = runs;
            return Err(err);
        }
        self.active_sites = sids;
        let mut flats = std::mem::take(&mut self.flats);
        flats.clear();
        flats.extend(runs.iter().map(|r| r.addr));
        let plan = self.plan;
        for _ in 0..trips {
            let mut off = 0usize;
            for &ri in &active {
                let g = &plan.gruns[ri as usize];
                let n = (g.sites.1 - g.sites.0) as usize;
                self.exec_vops(g.vops, &flats[off..off + n], g.sites.0);
                off += n;
            }
            for (f, r) in flats.iter_mut().zip(&runs) {
                *f += r.stride;
            }
        }
        self.flats = flats;
        self.runs = runs;
        self.active_runs = active;
        self.env[var] = l + (trips - 1) * step;
        Ok(())
    }

    /// Runs a block's value micro-ops; `flats[sid - base]` holds each
    /// site's flat element index. Pure IEEE f64 stack evaluation — the
    /// op order is the reference interpreter's evaluation order, so
    /// results are bit-identical.
    fn exec_vops(&mut self, vops: (u32, u32), flats: &[i64], base: u32) {
        for op in &self.plan.vops[vops.0 as usize..vops.1 as usize] {
            match *op {
                VOp::Const(c) => self.stack.push(c),
                VOp::Temp(t) => self.stack.push(self.temps[t as usize]),
                VOp::Load(sid) => {
                    let site = &self.plan.sites[sid as usize];
                    let flat = flats[(sid - base) as usize] as usize;
                    self.stack.push(self.storage.array(site.array)[flat]);
                }
                VOp::Add => {
                    let b = self.stack.pop().expect("operand");
                    let a = self.stack.pop().expect("operand");
                    self.stack.push(a + b);
                }
                VOp::Sub => {
                    let b = self.stack.pop().expect("operand");
                    let a = self.stack.pop().expect("operand");
                    self.stack.push(a - b);
                }
                VOp::Mul => {
                    let b = self.stack.pop().expect("operand");
                    let a = self.stack.pop().expect("operand");
                    self.stack.push(a * b);
                }
                VOp::Store(sid) => {
                    let v = self.stack.pop().expect("value");
                    let site = &self.plan.sites[sid as usize];
                    let flat = flats[(sid - base) as usize] as usize;
                    self.storage.array_mut(site.array)[flat] = v;
                }
                VOp::SetTemp(t) => {
                    let v = self.stack.pop().expect("value");
                    self.temps[t as usize] = v;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::interpret;
    use crate::trace::{measure_attributed_reference, measure_reference};
    use eco_ir::{ArrayRef, Cond, Loop, Stmt};
    use eco_kernels::Kernel;

    fn opts() -> LayoutOptions {
        LayoutOptions::default()
    }

    fn machines() -> Vec<MachineDesc> {
        vec![
            MachineDesc::sgi_r10000().scaled(32),
            MachineDesc::ultrasparc_iie().scaled(32),
        ]
    }

    /// Compiled and reference measurement must agree exactly — counters,
    /// cycles, and per-tag attribution — on `program` at `params`.
    fn assert_measure_parity(program: &Program, params: &Params) {
        let plan = ExecutablePlan::compile(program).expect("compile");
        for m in machines() {
            assert_eq!(
                plan.measure(params, &m, &opts()),
                measure_reference(program, params, &m, &opts()),
                "{} on {}",
                program.name,
                m.name
            );
            assert_eq!(
                plan.measure_attributed(params, &m, &opts()),
                measure_attributed_reference(program, params, &m, &opts()),
                "{} attributed on {}",
                program.name,
                m.name
            );
        }
    }

    /// Compiled and reference numeric execution must agree bit for bit
    /// on every array.
    fn assert_numeric_parity(program: &Program, params: &Params) {
        let layout = ArrayLayout::new(program, params, &opts()).expect("layout");
        let mut ref_st = Storage::seeded(&layout, 99);
        let mut plan_st = Storage::seeded(&layout, 99);
        let r1 = interpret(program, params, &layout, &mut ref_st);
        let plan = ExecutablePlan::compile(program).expect("compile");
        let r2 = plan.interpret(params, &layout, &mut plan_st);
        assert_eq!(r1, r2, "{}", program.name);
        if r1.is_err() {
            return; // storage contents are unspecified after an error
        }
        for a in 0..layout.num_arrays() {
            let id = ArrayId(a as u32);
            let (x, y) = (ref_st.array(id), plan_st.array(id));
            assert_eq!(x.len(), y.len());
            for (i, (u, v)) in x.iter().zip(y).enumerate() {
                assert_eq!(
                    u.to_bits(),
                    v.to_bits(),
                    "{} array {a} elem {i}: {u} vs {v}",
                    program.name
                );
            }
        }
    }

    #[test]
    fn all_kernels_match_reference_measurement() {
        for k in Kernel::all() {
            for n in [5i64, 17] {
                let params = Params::new().with(k.size, n);
                assert_measure_parity(&k.program, &params);
            }
        }
    }

    #[test]
    fn all_kernels_match_reference_numerics_bitwise() {
        for k in Kernel::all() {
            let params = Params::new().with(k.size, 13);
            assert_numeric_parity(&k.program, &params);
        }
    }

    /// A hand-tiled MM with `Min` tail bounds, a guard, a scalar
    /// temporary, and software prefetch — exercises `Loop`/`End`,
    /// `Guard`, generic `Block`s, and multi-site `Fused` loops at once.
    fn tiled_guarded_mm(tile: i64) -> Program {
        let mut p = Program::new("mm_tiled_guarded");
        let n = p.add_param("N");
        let jj = p.add_loop_var("JJ");
        let (k, j, i) = (
            p.add_loop_var("K"),
            p.add_loop_var("J"),
            p.add_loop_var("I"),
        );
        let a = p.add_array("A", vec![AffineExpr::var(n), AffineExpr::var(n)]);
        let b = p.add_array("B", vec![AffineExpr::var(n), AffineExpr::var(n)]);
        let c = p.add_array("C", vec![AffineExpr::var(n), AffineExpr::var(n)]);
        let t = p.add_temp("t");
        let n1: AffineExpr = AffineExpr::var(n) - AffineExpr::constant(1);
        let c_ref = ArrayRef::new(c, vec![AffineExpr::var(i), AffineExpr::var(j)]);
        let inner = vec![
            Stmt::Prefetch {
                target: ArrayRef::new(
                    a,
                    vec![
                        AffineExpr::var(i) + AffineExpr::constant(8),
                        AffineExpr::var(k),
                    ],
                ),
            },
            Stmt::Store {
                target: c_ref.clone(),
                value: ScalarExpr::add(
                    ScalarExpr::Load(c_ref),
                    ScalarExpr::mul(
                        ScalarExpr::Load(ArrayRef::new(
                            a,
                            vec![AffineExpr::var(i), AffineExpr::var(k)],
                        )),
                        ScalarExpr::Temp(t),
                    ),
                ),
            },
        ];
        let i_loop = Stmt::For(Loop {
            var: i,
            lo: 0.into(),
            hi: n1.clone().into(),
            step: 1,
            body: inner,
        });
        let j_body = vec![
            Stmt::SetTemp {
                temp: t,
                value: ScalarExpr::Load(ArrayRef::new(
                    b,
                    vec![AffineExpr::var(k), AffineExpr::var(j)],
                )),
            },
            Stmt::If {
                cond: Cond::le(AffineExpr::var(j), n1.clone()),
                then: vec![i_loop],
            },
        ];
        let j_loop = Stmt::For(Loop {
            var: j,
            lo: AffineExpr::var(jj).into(),
            hi: Bound::min_of(vec![
                AffineExpr::var(jj) + AffineExpr::constant(tile - 1),
                n1.clone(),
            ]),
            step: 1,
            body: j_body,
        });
        let k_loop = Stmt::For(Loop {
            var: k,
            lo: 0.into(),
            hi: n1.clone().into(),
            step: 1,
            body: vec![j_loop],
        });
        p.body.push(Stmt::For(Loop {
            var: jj,
            lo: 0.into(),
            hi: n1.into(),
            step: tile,
            body: vec![k_loop],
        }));
        p
    }

    #[test]
    fn tiled_guarded_variant_matches_reference() {
        // 13 % 4 != 0 exercises the Min tail bound; the prefetch runs
        // past the edge of A for the last 8 values of I.
        let p = tiled_guarded_mm(4);
        let params = Params::new().with_named(&p, "N", 13).expect("N");
        assert_measure_parity(&p, &params);
        assert_numeric_parity(&p, &params);
    }

    /// The shape unroll-and-jam code generation produces: the innermost
    /// K loop's body is straight-line code under `If`s whose conditions
    /// involve I and N but never K. Such a loop must fuse — guards
    /// decided once at entry — and still match the reference exactly.
    fn guard_invariant_inner_mm() -> Program {
        let mut p = Program::new("mm_guard_inner");
        let n = p.add_param("N");
        let i = p.add_loop_var("I");
        let k = p.add_loop_var("K");
        let a = p.add_array("A", vec![AffineExpr::var(n), AffineExpr::var(n)]);
        let b = p.add_array("B", vec![AffineExpr::var(n), AffineExpr::var(n)]);
        let c = p.add_array("C", vec![AffineExpr::var(n), AffineExpr::var(n)]);
        let t0 = p.add_temp("t0");
        let t1 = p.add_temp("t1");
        let n1: AffineExpr = AffineExpr::var(n) - AffineExpr::constant(1);
        let load = |arr, r, c_| ScalarExpr::Load(ArrayRef::new(arr, vec![r, c_]));
        let k_body = vec![
            Stmt::SetTemp {
                temp: t0,
                value: ScalarExpr::add(
                    ScalarExpr::Temp(t0),
                    ScalarExpr::mul(
                        load(a, AffineExpr::var(i), AffineExpr::var(k)),
                        load(b, AffineExpr::var(k), AffineExpr::constant(0)),
                    ),
                ),
            },
            Stmt::If {
                // I-dependent, K-invariant: false on the unroll tail.
                cond: Cond::le(AffineExpr::var(i) + AffineExpr::constant(1), n1.clone()),
                then: vec![
                    Stmt::SetTemp {
                        temp: t1,
                        value: ScalarExpr::add(
                            ScalarExpr::Temp(t1),
                            ScalarExpr::mul(
                                load(
                                    a,
                                    AffineExpr::var(i) + AffineExpr::constant(1),
                                    AffineExpr::var(k),
                                ),
                                load(b, AffineExpr::var(k), AffineExpr::constant(0)),
                            ),
                        ),
                    },
                    Stmt::Store {
                        target: ArrayRef::new(
                            c,
                            vec![
                                AffineExpr::var(i) + AffineExpr::constant(1),
                                AffineExpr::var(k),
                            ],
                        ),
                        value: ScalarExpr::Temp(t1),
                    },
                ],
            },
        ];
        let k_loop = Stmt::For(Loop {
            var: k,
            lo: 0.into(),
            hi: n1.clone().into(),
            step: 1,
            body: k_body,
        });
        p.body.push(Stmt::For(Loop {
            var: i,
            lo: 0.into(),
            hi: n1.into(),
            step: 2,
            body: vec![
                Stmt::SetTemp {
                    temp: t0,
                    value: ScalarExpr::Const(0.0),
                },
                Stmt::SetTemp {
                    temp: t1,
                    value: ScalarExpr::Const(0.0),
                },
                k_loop,
                Stmt::Store {
                    target: ArrayRef::new(c, vec![AffineExpr::var(i), AffineExpr::constant(0)]),
                    value: ScalarExpr::Temp(t0),
                },
            ],
        }));
        p
    }

    #[test]
    fn guard_invariant_inner_loop_fuses_and_matches_reference() {
        let p = guard_invariant_inner_mm();
        let plan = ExecutablePlan::compile(&p).expect("compile");
        assert!(
            plan.insts
                .iter()
                .any(|i| matches!(i, Inst::Fused { runs, .. } if runs.1 - runs.0 == 2)),
            "the guarded K loop must lower to a two-run Fused inst"
        );
        // N = 13: the guard is false on the last I (unroll tail);
        // N = 8: the guard holds for every I.
        for n in [13i64, 8] {
            let params = Params::new().with_named(&p, "N", n).expect("N");
            assert_measure_parity(&p, &params);
            assert_numeric_parity(&p, &params);
        }
    }

    #[test]
    fn reverse_and_strided_loops_match_reference() {
        // B[N-1-I] = A[2*I] with I stepping by 3 from 1: negative byte
        // stride on the store stream, gaps on the load stream.
        let mut p = Program::new("rev");
        let n = p.add_param("N");
        let i = p.add_loop_var("I");
        let a = p.add_array("A", vec![AffineExpr::var(n) * 2]);
        let b = p.add_array("B", vec![AffineExpr::var(n)]);
        p.body.push(Stmt::For(Loop {
            var: i,
            lo: 1.into(),
            hi: (AffineExpr::var(n) - AffineExpr::constant(1)).into(),
            step: 3,
            body: vec![Stmt::Store {
                target: ArrayRef::new(
                    b,
                    vec![AffineExpr::var(n) - AffineExpr::constant(1) - AffineExpr::var(i)],
                ),
                value: ScalarExpr::Load(ArrayRef::new(a, vec![AffineExpr::var(i) * 2])),
            }],
        }));
        let params = Params::new().with(n, 50);
        assert_measure_parity(&p, &params);
        assert_numeric_parity(&p, &params);
    }

    #[test]
    fn loop_variable_values_persist_like_the_reference() {
        // After `DO I = 0,3 {}` the reference leaves I at its last
        // executed value (3); a zero-trip loop leaves J untouched (0).
        // Both are observable through the following stores.
        let mut p = Program::new("env");
        let i = p.add_loop_var("I");
        let j = p.add_loop_var("J");
        let a = p.add_array("A", vec![AffineExpr::constant(8)]);
        p.body.push(Stmt::For(Loop {
            var: i,
            lo: 0.into(),
            hi: 3.into(),
            step: 1,
            body: vec![],
        }));
        p.body.push(Stmt::For(Loop {
            var: j,
            lo: 5.into(),
            hi: 2.into(),
            step: 1,
            body: vec![],
        }));
        p.body.push(Stmt::Store {
            target: ArrayRef::new(a, vec![AffineExpr::var(i) + AffineExpr::var(j)]),
            value: ScalarExpr::Const(1.0),
        });
        let params = Params::new();
        assert_measure_parity(&p, &params);
        assert_numeric_parity(&p, &params);
        // And pin the absolute semantics: I=3, J=0 => A[3] was written.
        let layout = ArrayLayout::new(&p, &params, &opts()).expect("layout");
        let mut st = Storage::zeroed(&layout);
        let plan = ExecutablePlan::compile(&p).expect("compile");
        plan.interpret(&params, &layout, &mut st).expect("run");
        let a_id = p.array_by_name("A").expect("A");
        assert_eq!(st.array(a_id)[3], 1.0);
        assert_eq!(st.array(a_id).iter().filter(|&&x| x != 0.0).count(), 1);
    }

    fn oob_err(r: Result<Counters, ExecError>) -> ExecError {
        r.expect_err("must be out of bounds")
    }

    #[test]
    fn oob_errors_match_reference_in_fused_single_site_loop() {
        let mut p = Program::new("oob1");
        let i = p.add_loop_var("I");
        let a = p.add_array("A", vec![AffineExpr::constant(4)]);
        p.body.push(Stmt::For(Loop {
            var: i,
            lo: 0.into(),
            hi: 4.into(), // one past the end
            step: 1,
            body: vec![Stmt::Store {
                target: ArrayRef::new(a, vec![AffineExpr::var(i)]),
                value: ScalarExpr::Const(1.0),
            }],
        }));
        let params = Params::new();
        let m = MachineDesc::sgi_r10000();
        let plan = ExecutablePlan::compile(&p).expect("compile");
        let got = oob_err(plan.measure(&params, &m, &opts()));
        let want = oob_err(measure_reference(&p, &params, &m, &opts()));
        assert_eq!(got, want);
        assert!(
            matches!(&got, ExecError::OutOfBounds { array, indices, extents }
                if array == "A" && indices == &vec![4] && extents == &vec![4]),
            "{got}"
        );
        // The numeric executors agree on the error too.
        let layout = ArrayLayout::new(&p, &params, &opts()).expect("layout");
        let e1 = interpret(&p, &params, &layout, &mut Storage::zeroed(&layout)).expect_err("oob");
        let e2 = plan
            .interpret(&params, &layout, &mut Storage::zeroed(&layout))
            .expect_err("oob");
        assert_eq!(e1, e2);
    }

    #[test]
    fn oob_errors_report_first_failure_in_trace_order() {
        // Site 1 (A[I+3], extent 5) fails first at I=2; site 2
        // (B[I+4], extent 5) fails first at I=1. The reference walker
        // hits B at I=1 before A at I=2; the fused executor must pick
        // the same (iteration, site) pair.
        let mut p = Program::new("oob2");
        let i = p.add_loop_var("I");
        let a = p.add_array("A", vec![AffineExpr::constant(5)]);
        let b = p.add_array("B", vec![AffineExpr::constant(5)]);
        p.body.push(Stmt::For(Loop {
            var: i,
            lo: 0.into(),
            hi: 9.into(),
            step: 1,
            body: vec![
                Stmt::Store {
                    target: ArrayRef::new(a, vec![AffineExpr::var(i) + AffineExpr::constant(3)]),
                    value: ScalarExpr::Const(1.0),
                },
                Stmt::Store {
                    target: ArrayRef::new(b, vec![AffineExpr::var(i) + AffineExpr::constant(4)]),
                    value: ScalarExpr::Const(2.0),
                },
            ],
        }));
        let params = Params::new();
        let m = MachineDesc::sgi_r10000();
        let plan = ExecutablePlan::compile(&p).expect("compile");
        let got = oob_err(plan.measure(&params, &m, &opts()));
        let want = oob_err(measure_reference(&p, &params, &m, &opts()));
        assert_eq!(got, want);
        assert!(
            matches!(&got, ExecError::OutOfBounds { array, indices, .. }
                if array == "B" && indices == &vec![5]),
            "{got}"
        );
    }

    #[test]
    fn oob_errors_match_reference_in_guarded_blocks() {
        // The guard keeps the body out of the fused path, so this
        // exercises the generic Block access machinery.
        let mut p = Program::new("oob3");
        let i = p.add_loop_var("I");
        let a = p.add_array("A", vec![AffineExpr::constant(4)]);
        p.body.push(Stmt::For(Loop {
            var: i,
            lo: 0.into(),
            hi: 9.into(),
            step: 1,
            body: vec![Stmt::If {
                cond: Cond::le(AffineExpr::constant(0), AffineExpr::var(i)),
                then: vec![Stmt::Store {
                    target: ArrayRef::new(a, vec![AffineExpr::var(i)]),
                    value: ScalarExpr::Const(1.0),
                }],
            }],
        }));
        let params = Params::new();
        let m = MachineDesc::sgi_r10000();
        let plan = ExecutablePlan::compile(&p).expect("compile");
        assert_eq!(
            oob_err(plan.measure(&params, &m, &opts())),
            oob_err(measure_reference(&p, &params, &m, &opts()))
        );
    }

    #[test]
    fn a_plan_is_reusable_across_parameter_points() {
        let k = Kernel::matmul();
        let plan = ExecutablePlan::compile(&k.program).expect("compile");
        let m = MachineDesc::sgi_r10000().scaled(32);
        for n in [4i64, 9, 24] {
            let params = Params::new().with(k.size, n);
            assert_eq!(
                plan.measure(&params, &m, &opts()),
                measure_reference(&k.program, &params, &m, &opts()),
                "N={n}"
            );
        }
    }
}
