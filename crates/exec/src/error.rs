//! Execution errors.

use std::error::Error;
use std::fmt;

/// Errors raised while laying out or executing a program.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// A declared parameter was not bound to a value.
    UnboundParam(String),
    /// An array extent evaluated to a non-positive value.
    BadExtent {
        /// Array name.
        array: String,
        /// The offending extent.
        extent: i64,
    },
    /// A load or store fell outside its array. (Out-of-bounds
    /// *prefetches* are legal and silently dropped.)
    OutOfBounds {
        /// Array name.
        array: String,
        /// The evaluated subscripts.
        indices: Vec<i64>,
        /// The array extents.
        extents: Vec<i64>,
    },
    /// The program failed structural validation.
    Invalid(String),
    /// A telemetry output file (`--trace` or `--events`) could not be
    /// created. Raised when the engine is built, before any work runs,
    /// so a bad path fails fast instead of surfacing after the search.
    Telemetry {
        /// What the file was for (`"trace"`, `"events"`).
        kind: String,
        /// The offending path.
        path: String,
        /// The underlying I/O error.
        msg: String,
    },
    /// The persistent result store (`--store`) could not be opened.
    /// Like [`ExecError::Telemetry`], raised when the engine is built
    /// so a bad store root fails fast.
    Store {
        /// The store root.
        path: String,
        /// The underlying store error.
        msg: String,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnboundParam(name) => write!(f, "parameter {name} is unbound"),
            ExecError::BadExtent { array, extent } => {
                write!(f, "array {array} has non-positive extent {extent}")
            }
            ExecError::OutOfBounds {
                array,
                indices,
                extents,
            } => write!(f, "access {array}{indices:?} outside extents {extents:?}"),
            ExecError::Invalid(msg) => write!(f, "invalid program: {msg}"),
            ExecError::Telemetry { kind, path, msg } => {
                write!(f, "cannot create {kind} file {path}: {msg}")
            }
            ExecError::Store { path, msg } => {
                write!(f, "cannot open result store {path}: {msg}")
            }
        }
    }
}

impl Error for ExecError {}
