//! Execution errors.

use std::error::Error;
use std::fmt;

/// Errors raised while laying out or executing a program.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// A declared parameter was not bound to a value.
    UnboundParam(String),
    /// An array extent evaluated to a non-positive value.
    BadExtent {
        /// Array name.
        array: String,
        /// The offending extent.
        extent: i64,
    },
    /// A load or store fell outside its array. (Out-of-bounds
    /// *prefetches* are legal and silently dropped.)
    OutOfBounds {
        /// Array name.
        array: String,
        /// The evaluated subscripts.
        indices: Vec<i64>,
        /// The array extents.
        extents: Vec<i64>,
    },
    /// The program failed structural validation.
    Invalid(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnboundParam(name) => write!(f, "parameter {name} is unbound"),
            ExecError::BadExtent { array, extent } => {
                write!(f, "array {array} has non-positive extent {extent}")
            }
            ExecError::OutOfBounds {
                array,
                indices,
                extents,
            } => write!(f, "access {array}{indices:?} outside extents {extents:?}"),
            ExecError::Invalid(msg) => write!(f, "invalid program: {msg}"),
        }
    }
}

impl Error for ExecError {}
