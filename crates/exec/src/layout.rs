//! Concrete memory layout and storage for a program instance.
//!
//! Arrays are column-major (leftmost subscript contiguous, as in the
//! paper's Fortran kernels) and are laid out back-to-back in a flat
//! address space, exactly like statically-declared Fortran arrays. That
//! contiguity is deliberate: it is what makes pathological (power-of-two)
//! leading dimensions produce cache conflicts for untransformed code.

use crate::error::ExecError;
use eco_ir::{ArrayId, ArrayRef, Program, VarId, VarKind};

/// Values for the symbolic parameters of a program (e.g. `N = 512`).
#[derive(Debug, Clone, Default)]
pub struct Params {
    pairs: Vec<(VarId, i64)>,
}

impl Params {
    /// No parameters.
    pub fn new() -> Self {
        Params::default()
    }

    /// Binds parameter `v` to `value` (builder style).
    #[must_use]
    pub fn with(mut self, v: VarId, value: i64) -> Self {
        self.pairs.push((v, value));
        self
    }

    /// Binds a parameter by name, looked up in `program`.
    ///
    /// # Errors
    ///
    /// Fails if `name` is not a declared parameter of `program`.
    pub fn with_named(self, program: &Program, name: &str, value: i64) -> Result<Self, ExecError> {
        let v = program
            .var_by_name(name)
            .filter(|&v| program.var(v).kind == VarKind::Param)
            .ok_or_else(|| ExecError::UnboundParam(name.to_string()))?;
        Ok(self.with(v, value))
    }

    /// The bound `(var, value)` pairs.
    pub fn pairs(&self) -> &[(VarId, i64)] {
        &self.pairs
    }

    /// Builds the initial variable environment for `program`, checking
    /// that every declared parameter is bound.
    ///
    /// # Errors
    ///
    /// Fails if a declared parameter has no binding.
    pub fn env_for(&self, program: &Program) -> Result<Vec<i64>, ExecError> {
        let mut env = vec![0i64; program.vars.len()];
        let mut bound = vec![false; program.vars.len()];
        for &(v, val) in &self.pairs {
            env[v.index()] = val;
            bound[v.index()] = true;
        }
        for p in program.params() {
            if !bound[p.index()] {
                return Err(ExecError::UnboundParam(program.var(p).name.clone()));
            }
        }
        Ok(env)
    }
}

/// Byte-level placement of every array of a program instance.
#[derive(Debug, Clone)]
pub struct ArrayLayout {
    /// Evaluated extent of each dimension, per array.
    extents: Vec<Vec<i64>>,
    /// Base byte address per array.
    bases: Vec<u64>,
    total_bytes: u64,
}

/// Options controlling [`ArrayLayout::new`].
#[derive(Debug, Clone, Default)]
pub struct LayoutOptions {
    /// Byte address of the first array.
    pub base_addr: u64,
    /// Extra bytes inserted between consecutive arrays (padding).
    pub inter_array_pad_bytes: u64,
}

impl ArrayLayout {
    /// Computes the layout of `program`'s arrays under `params`.
    ///
    /// # Errors
    ///
    /// Fails if a parameter is unbound or an extent evaluates to a
    /// non-positive value.
    pub fn new(
        program: &Program,
        params: &Params,
        opts: &LayoutOptions,
    ) -> Result<Self, ExecError> {
        let env = params.env_for(program)?;
        let lookup = |v: VarId| env[v.index()];
        let mut extents = Vec::with_capacity(program.arrays.len());
        let mut bases = Vec::with_capacity(program.arrays.len());
        let mut addr = opts.base_addr;
        for decl in &program.arrays {
            let dims: Vec<i64> = decl.dims.iter().map(|e| e.eval(&lookup)).collect();
            if let Some(&bad) = dims.iter().find(|&&d| d <= 0) {
                return Err(ExecError::BadExtent {
                    array: decl.name.clone(),
                    extent: bad,
                });
            }
            let elems: i64 = dims.iter().product();
            bases.push(addr);
            addr += elems as u64 * 8 + opts.inter_array_pad_bytes;
            extents.push(dims);
        }
        Ok(ArrayLayout {
            extents,
            bases,
            total_bytes: addr - opts.base_addr,
        })
    }

    /// Evaluated dimension extents of array `a`.
    pub fn extents(&self, a: ArrayId) -> &[i64] {
        &self.extents[a.index()]
    }

    /// Number of elements in array `a`.
    pub fn len(&self, a: ArrayId) -> usize {
        self.extents[a.index()].iter().product::<i64>() as usize
    }

    /// True if the layout holds no arrays.
    pub fn is_empty(&self) -> bool {
        self.extents.is_empty()
    }

    /// Number of arrays.
    pub fn num_arrays(&self) -> usize {
        self.extents.len()
    }

    /// Base byte address of array `a`.
    pub fn base(&self, a: ArrayId) -> u64 {
        self.bases[a.index()]
    }

    /// Total bytes spanned by all arrays (including padding).
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Column-major flat element index of `r` under variable environment
    /// `env`, or `None` if any subscript is out of bounds.
    #[inline]
    pub fn flat_index(&self, r: &ArrayRef, env: &[i64]) -> Option<usize> {
        let exts = &self.extents[r.array.index()];
        let mut flat: i64 = 0;
        // Column-major: walk dims right-to-left, Horner style.
        for d in (0..exts.len()).rev() {
            let i = r.idx[d].eval(&|v: VarId| env[v.index()]);
            if i < 0 || i >= exts[d] {
                return None;
            }
            flat = flat * exts[d] + i;
        }
        Some(flat as usize)
    }

    /// Byte address of `r` under `env`, or `None` if out of bounds.
    #[inline]
    pub fn address(&self, r: &ArrayRef, env: &[i64]) -> Option<u64> {
        self.flat_index(r, env)
            .map(|f| self.bases[r.array.index()] + f as u64 * 8)
    }
}

/// Heap storage for all arrays of a program instance.
#[derive(Debug, Clone)]
pub struct Storage {
    arrays: Vec<Vec<f64>>,
}

impl Storage {
    /// Zero-initialized storage matching `layout`.
    pub fn zeroed(layout: &ArrayLayout) -> Self {
        Storage {
            arrays: (0..layout.num_arrays())
                .map(|i| vec![0.0; layout.len(ArrayId(i as u32))])
                .collect(),
        }
    }

    /// Deterministic pseudo-random initial data (a fixed LCG), so tests
    /// comparing transformed against reference programs are reproducible
    /// without pulling in an RNG dependency. Each array gets its own
    /// stream (derived from `seed` and the array index), so adding,
    /// removing or resizing one array leaves the others' data unchanged.
    pub fn seeded(layout: &ArrayLayout, seed: u64) -> Self {
        Storage {
            arrays: (0..layout.num_arrays())
                .map(|i| {
                    let mut state = seed
                        .wrapping_add(i as u64 + 1)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        | 1;
                    let mut next = move || {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        // map to [-1, 1)
                        ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
                    };
                    (0..layout.len(ArrayId(i as u32))).map(|_| next()).collect()
                })
                .collect(),
        }
    }

    /// Read-only view of array `a`.
    pub fn array(&self, a: ArrayId) -> &[f64] {
        &self.arrays[a.index()]
    }

    /// Mutable view of array `a`.
    pub fn array_mut(&mut self, a: ArrayId) -> &mut [f64] {
        &mut self.arrays[a.index()]
    }

    /// Maximum absolute element-wise difference between the same array in
    /// two storages (for equivalence testing).
    pub fn max_abs_diff(&self, other: &Storage, a: ArrayId) -> f64 {
        self.array(a)
            .iter()
            .zip(other.array(a))
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }
}
