//! Numeric interpretation of IR programs.
//!
//! The interpreter executes a program over real `f64` storage. It is the
//! *semantic oracle* of the reproduction: every transformation in
//! `eco-transform` is checked by interpreting the original and the
//! transformed program on identical inputs and comparing the outputs.

use crate::error::ExecError;
use crate::layout::{ArrayLayout, Params, Storage};
use eco_ir::{Program, ScalarExpr, Stmt, VarId};

struct Interp<'a> {
    program: &'a Program,
    layout: &'a ArrayLayout,
    env: Vec<i64>,
    temps: Vec<f64>,
    storage: &'a mut Storage,
}

impl Interp<'_> {
    fn eval(&mut self, e: &ScalarExpr) -> Result<f64, ExecError> {
        match e {
            ScalarExpr::Const(c) => Ok(*c),
            ScalarExpr::Temp(t) => Ok(self.temps[t.index()]),
            ScalarExpr::Load(r) => {
                let flat = self
                    .layout
                    .flat_index(r, &self.env)
                    .ok_or_else(|| self.oob(r))?;
                Ok(self.storage.array(r.array)[flat])
            }
            ScalarExpr::Add(a, b) => Ok(self.eval(a)? + self.eval(b)?),
            ScalarExpr::Sub(a, b) => Ok(self.eval(a)? - self.eval(b)?),
            ScalarExpr::Mul(a, b) => Ok(self.eval(a)? * self.eval(b)?),
        }
    }

    fn oob(&self, r: &eco_ir::ArrayRef) -> ExecError {
        ExecError::OutOfBounds {
            array: self.program.array(r.array).name.clone(),
            indices: r
                .idx
                .iter()
                .map(|e| e.eval(&|v: VarId| self.env[v.index()]))
                .collect(),
            extents: self.layout.extents(r.array).to_vec(),
        }
    }

    fn run(&mut self, stmts: &[Stmt]) -> Result<(), ExecError> {
        for s in stmts {
            match s {
                Stmt::For(l) => {
                    let lookup = |v: VarId| self.env[v.index()];
                    let lo = l.lo.eval(&lookup);
                    let hi = l.hi.eval(&lookup);
                    let mut i = lo;
                    while i <= hi {
                        self.env[l.var.index()] = i;
                        self.run(&l.body)?;
                        i += l.step;
                    }
                }
                Stmt::If { cond, then } => {
                    if cond.eval(&|v: VarId| self.env[v.index()]) {
                        self.run(then)?;
                    }
                }
                Stmt::Store { target, value } => {
                    let val = self.eval(value)?;
                    let flat = self
                        .layout
                        .flat_index(target, &self.env)
                        .ok_or_else(|| self.oob(target))?;
                    self.storage.array_mut(target.array)[flat] = val;
                }
                Stmt::SetTemp { temp, value } => {
                    let val = self.eval(value)?;
                    self.temps[temp.index()] = val;
                }
                // Prefetch has no numeric effect.
                Stmt::Prefetch { .. } => {}
            }
        }
        Ok(())
    }
}

/// Interprets `program` over `storage` with the given parameter values.
///
/// `storage` must have been created from an [`ArrayLayout`] for the same
/// program and parameters.
///
/// # Errors
///
/// Fails on unbound parameters, validation errors, or out-of-bounds
/// loads/stores (out-of-bounds prefetches are ignored).
pub fn interpret(
    program: &Program,
    params: &Params,
    layout: &ArrayLayout,
    storage: &mut Storage,
) -> Result<(), ExecError> {
    program.validate().map_err(ExecError::Invalid)?;
    let env = params.env_for(program)?;
    let mut interp = Interp {
        program,
        layout,
        env,
        temps: vec![0.0; program.temps.len()],
        storage,
    };
    interp.run(&program.body)
}
