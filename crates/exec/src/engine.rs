//! The parallel, memoized evaluation engine.
//!
//! Phase 2 of the paper executes every search point "on the real
//! machine"; in this reproduction each point is a full trace-driven
//! cache simulation, which dominates wall-clock time. The [`Engine`]
//! makes those evaluations cheap without changing a single search
//! decision:
//!
//! * **batching** — callers submit independent points together as
//!   [`EvalJob`]s and get results back *in submission order*, so code
//!   that scans results with strict `<` ties behaves exactly like the
//!   serial loop it replaced;
//! * **memoization** — jobs are deduplicated through a content-addressed
//!   cache keyed by program text, parameter bindings, layout, and
//!   machine fingerprint ([`EvalKey`]), both within a batch and across
//!   the engine's lifetime (errors are memoized too: a point that failed
//!   once fails identically forever);
//! * **persistence** — an optional second memo tier
//!   ([`EngineConfig::store`]) backed by the disk store in `eco-store`:
//!   unique points are looked up on disk before simulating and written
//!   back after, so repeated runs warm-start across processes and a
//!   killed sweep resumes for free. Store hits count as `evaluated`
//!   work (the point was resolved, just not re-simulated), keeping
//!   run manifests byte-identical between cold and warm runs;
//! * **in-flight dedupe** — when several batches run concurrently on
//!   one engine (the `eco serve` daemon), at most one simulation per
//!   [`EvalKey`] is ever in flight: later requesters block on the
//!   owner's result instead of re-simulating, counted in
//!   [`EngineStats::dedup_waits`];
//! * **parallelism** — unique jobs run on a `std::thread::scope` pool;
//!   the thread count never influences results, only latency;
//! * **plan memoization** — jobs normally execute through the compiled
//!   [`ExecutablePlan`] pipeline, and the engine caches one lowered plan
//!   per program (keyed by the program component of [`EvalKey`]), so
//!   re-evaluating a variant at new parameter points skips lowering
//!   entirely; [`ExecBackend::Reference`] re-routes every job through
//!   the tree-walking oracle for differential runs (`--engine=reference`
//!   in the CLIs);
//! * **telemetry** — an optional JSONL search trace records one line per
//!   submitted job (label, program, params, counters, cache-hit flag,
//!   wall time); an optional structured **event stream**
//!   ([`eco_events::EventStream`], `--events` in the CLIs) additionally
//!   records per-job `point` events (memo hit/miss, status, wall time),
//!   per-batch `batch` events (jobs, unique work, worker threads used),
//!   `plan_compile` events (lowering statistics and compile time per
//!   program), and running `engine_stats` counter snapshots. The search
//!   layers its stage spans on the same stream via
//!   [`Evaluator::events`].
//!
//! Consumers program against the [`Evaluator`] trait rather than the
//! concrete engine, so tests can substitute counting or failing
//! evaluators and future backends (real hardware, remote fleets) slot in
//! unchanged.
//!
//! # Examples
//!
//! ```
//! use eco_exec::{Engine, EvalJob, Evaluator, Params};
//! use eco_ir::{AffineExpr, ArrayRef, Loop, Program, ScalarExpr, Stmt};
//! use eco_machine::MachineDesc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut p = Program::new("stream");
//! let n = p.add_param("N");
//! let i = p.add_loop_var("I");
//! let a = p.add_array("A", vec![AffineExpr::var(n)]);
//! let r = ArrayRef::new(a, vec![AffineExpr::var(i)]);
//! p.body.push(Stmt::For(Loop {
//!     var: i,
//!     lo: 0.into(),
//!     hi: (AffineExpr::var(n) - AffineExpr::constant(1)).into(),
//!     step: 1,
//!     body: vec![Stmt::Store {
//!         target: r.clone(),
//!         value: ScalarExpr::add(ScalarExpr::Load(r), ScalarExpr::Const(1.0)),
//!     }],
//! }));
//! let engine = Engine::new(MachineDesc::sgi_r10000().scaled(32));
//! let jobs = vec![
//!     EvalJob::new(p.clone(), Params::new().with(n, 64)),
//!     EvalJob::new(p.clone(), Params::new().with(n, 64)), // duplicate
//! ];
//! let results = engine.eval_batch(&jobs);
//! assert_eq!(results[0], results[1]);
//! assert_eq!(engine.stats().evaluated, 1, "duplicate was deduplicated");
//! assert_eq!(engine.stats().cache_hits, 1);
//! # Ok(())
//! # }
//! ```

use eco_sched::sync::atomic::{AtomicUsize, Ordering};
use eco_sched::sync::{labeled_condvar, labeled_mutex, Arc, Condvar, Mutex};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs::File;
use std::hash::{Hash, Hasher as _};
use std::io::{BufWriter, Write as _};
use std::path::PathBuf;
use std::time::Instant;

use crate::error::ExecError;
use crate::layout::{LayoutOptions, Params};
use crate::plan::ExecutablePlan;
use crate::trace::{measure_attributed_reference, measure_reference};
use eco_cachesim::Counters;
use eco_events::{json_escape, names, Attrs, EventStream, Fnv64, Json, SpanId};
use eco_ir::Program;
use eco_machine::MachineDesc;
use eco_metrics::{Counter, Histogram, Registry};
use eco_store::{ResultStore, StoreKey};

/// One search point: a generated program plus everything that affects
/// its measurement.
#[derive(Debug, Clone)]
pub struct EvalJob {
    /// The program to simulate.
    pub program: Program,
    /// Parameter bindings (problem size, etc.).
    pub params: Params,
    /// Array placement options.
    pub layout: LayoutOptions,
    /// Free-form tag carried into the JSONL trace (e.g. variant name or
    /// search stage); not part of the memo key.
    pub label: String,
    /// Event-stream span this job's `point` event is attributed to
    /// (e.g. the search stage that proposed it); not part of the memo
    /// key.
    pub span: Option<SpanId>,
    /// Runs the simulation with per-array attribution: the resulting
    /// [`Counters::per_tag`] partition the aggregate counters by
    /// `ArrayId`, and the engine's `point` event carries the per-tag
    /// breakdown. Part of the memo key (attributed and plain results
    /// never alias, even though their aggregates are identical).
    pub attributed: bool,
}

impl EvalJob {
    /// A job with the default layout and an empty label.
    pub fn new(program: Program, params: Params) -> Self {
        EvalJob {
            program,
            params,
            layout: LayoutOptions::default(),
            label: String::new(),
            span: None,
            attributed: false,
        }
    }

    /// Requests per-array attribution (builder style).
    #[must_use]
    pub fn attributed(mut self, attributed: bool) -> Self {
        self.attributed = attributed;
        self
    }

    /// Sets the trace label (builder style).
    #[must_use]
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Attributes the job's `point` event to a span (builder style).
    #[must_use]
    pub fn in_span(mut self, span: Option<SpanId>) -> Self {
        self.span = span;
        self
    }

    /// Sets the layout options (builder style).
    #[must_use]
    pub fn with_layout(mut self, layout: LayoutOptions) -> Self {
        self.layout = layout;
        self
    }
}

/// Content-addressed identity of a measurement: two jobs with equal keys
/// are guaranteed to produce identical counters on the same engine.
///
/// The key folds together the program's full pretty-printed text, the
/// parameter bindings, the layout options, and the machine fingerprint,
/// using FNV-1a (stable across runs within a build). The two halves
/// also address records in the persistent result store
/// ([`EngineConfig::store`]); store records carry a version stamp, so a
/// key-scheme change invalidates old records instead of misreading
/// them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EvalKey(u64, u64);

impl EvalKey {
    /// The program-text fingerprint half ([`program_fingerprint`]).
    pub fn program_fp(&self) -> u64 {
        self.0
    }

    /// The machine/layout/params point-hash half.
    pub fn point_fp(&self) -> u64 {
        self.1
    }
}

/// Running totals of an engine's work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Jobs submitted through `eval` / `eval_batch`.
    pub requested: u64,
    /// Unique points resolved by this engine: simulated, or loaded
    /// from the persistent result store (see
    /// [`store_hits`](Self::store_hits) for the split). Counting store
    /// hits here keeps cold- and warm-store runs' manifests
    /// byte-identical.
    pub evaluated: u64,
    /// Jobs served from the in-memory memo cache or batch
    /// deduplication.
    pub cache_hits: u64,
    /// Simulations that returned an error (errors are memoized too).
    pub errors: u64,
    /// Of `evaluated`, points loaded from the persistent store instead
    /// of being simulated. Never recorded in run manifests.
    pub store_hits: u64,
    /// Jobs that blocked on another batch's identical in-flight
    /// evaluation instead of re-simulating (the serve-daemon dedupe
    /// path). Never recorded in run manifests.
    pub dedup_waits: u64,
    /// Fast-forward windows applied across all compiled-backend
    /// simulations (see [`eco_cachesim::SimStats`]). Telemetry about
    /// *how* simulations ran; never recorded in run manifests.
    pub ff_windows: u64,
    /// Accesses accounted arithmetically instead of walked, across all
    /// compiled-backend simulations. Never recorded in run manifests.
    pub ff_accesses: u64,
}

impl EngineStats {
    /// Fraction of requests served without running a simulation.
    pub fn hit_rate(&self) -> f64 {
        if self.requested == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / self.requested as f64
    }
}

/// Which executor an [`Engine`] routes jobs through.
///
/// Both backends are held to bit-identical counters by the differential
/// tests; `Reference` exists as the semantic oracle and for debugging
/// (`--engine=reference` in the CLIs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ExecBackend {
    /// The compiled [`ExecutablePlan`] pipeline, with one lowered plan
    /// memoized per program. The default.
    #[default]
    Compiled,
    /// The tree-walking reference tracer
    /// ([`measure_reference`](crate::measure_reference)).
    Reference,
}

impl ExecBackend {
    /// Parses a CLI `--engine` value (`plan`/`compiled` or `reference`).
    ///
    /// # Errors
    ///
    /// Returns the unrecognized value.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "plan" | "compiled" => Ok(ExecBackend::Compiled),
            "reference" | "ref" => Ok(ExecBackend::Reference),
            other => Err(format!(
                "unknown engine '{other}' (expected 'plan' or 'reference')"
            )),
        }
    }

    /// The canonical name, as recorded in manifests and event streams
    /// (and accepted back by [`parse`](Self::parse)).
    pub fn name(&self) -> &'static str {
        match self {
            ExecBackend::Compiled => "compiled",
            ExecBackend::Reference => "reference",
        }
    }
}

/// Configuration for [`Engine::with_config`].
///
/// Round-trips losslessly through the deterministic [`Json`] builder
/// ([`to_json`](Self::to_json) / [`from_json`](Self::from_json)), so a
/// request carrying a config can be fingerprinted, logged, and
/// replayed byte-identically.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads; `0` means auto (the `ECO_EVAL_THREADS` environment
    /// variable if set, otherwise `std::thread::available_parallelism`).
    pub threads: usize,
    /// Disables the memo cache when `false` (every job re-simulates).
    pub memoize: bool,
    /// Writes one JSONL record per submitted job to this file. The file
    /// is created (truncated) when the engine is built, so each engine
    /// produces a fresh trace.
    pub trace_path: Option<PathBuf>,
    /// Writes the structured observability event stream (spans, point
    /// events, plan compilations, counter snapshots) to this file. Like
    /// the trace, the file is created when the engine is built and an
    /// unwritable path fails fast.
    pub events_path: Option<PathBuf>,
    /// Which executor jobs run through (compiled plan by default).
    pub backend: ExecBackend,
    /// Root directory of the persistent result store (second memo
    /// tier); `None` disables persistence. Opened when the engine is
    /// built; an unusable root fails fast with [`ExecError::Store`].
    pub store_path: Option<PathBuf>,
}

impl EngineConfig {
    /// Auto thread count, memoization on, no trace, no events, no
    /// persistent store.
    pub fn new() -> Self {
        EngineConfig {
            threads: 0,
            memoize: true,
            trace_path: None,
            events_path: None,
            backend: ExecBackend::Compiled,
            store_path: None,
        }
    }

    /// Sets an explicit worker-thread count (builder style).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Enables or disables memoization (builder style).
    #[must_use]
    pub fn memoize(mut self, memoize: bool) -> Self {
        self.memoize = memoize;
        self
    }

    /// Sets the JSONL trace path (builder style).
    #[must_use]
    pub fn trace(mut self, path: impl Into<PathBuf>) -> Self {
        self.trace_path = Some(path.into());
        self
    }

    /// Sets the JSONL event-stream path (builder style).
    #[must_use]
    pub fn events(mut self, path: impl Into<PathBuf>) -> Self {
        self.events_path = Some(path.into());
        self
    }

    /// Selects the execution backend (builder style).
    #[must_use]
    pub fn backend(mut self, backend: ExecBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the persistent result-store root (builder style).
    #[must_use]
    pub fn store(mut self, path: impl Into<PathBuf>) -> Self {
        self.store_path = Some(path.into());
        self
    }

    /// Renders the config as a deterministic [`Json`] object (stable
    /// field order). `Json::parse(render()).from_json` is the identity.
    pub fn to_json(&self) -> Json {
        let opt_path = |p: &Option<PathBuf>| match p {
            Some(p) => Json::str(p.display().to_string()),
            None => Json::Null,
        };
        Json::obj()
            .field("threads", Json::UInt(self.threads as u64))
            .field("memoize", Json::Bool(self.memoize))
            .field("backend", Json::str(self.backend.name()))
            .field("trace", opt_path(&self.trace_path))
            .field("events", opt_path(&self.events_path))
            .field("store", opt_path(&self.store_path))
    }

    /// Parses a config back out of [`to_json`](Self::to_json)'s
    /// encoding.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or mistyped field.
    pub fn from_json(doc: &Json) -> Result<EngineConfig, String> {
        let opt_path = |key: &str| -> Result<Option<PathBuf>, String> {
            match doc.get(key) {
                None | Some(Json::Null) => Ok(None),
                Some(Json::Str(s)) => Ok(Some(PathBuf::from(s))),
                Some(other) => Err(format!("engine config field {key} mistyped: {other:?}")),
            }
        };
        let threads = doc
            .get("threads")
            .and_then(Json::as_u64)
            .ok_or("engine config missing threads")? as usize;
        let memoize = doc
            .get("memoize")
            .and_then(Json::as_bool)
            .ok_or("engine config missing memoize")?;
        let backend = ExecBackend::parse(
            doc.get("backend")
                .and_then(Json::as_str)
                .ok_or("engine config missing backend")?,
        )?;
        Ok(EngineConfig {
            threads,
            memoize,
            trace_path: opt_path("trace")?,
            events_path: opt_path("events")?,
            backend,
            store_path: opt_path("store")?,
        })
    }
}

/// Anything that can measure batches of search points on a machine.
///
/// The contract every implementation must honour, because the search
/// relies on it for reproducibility:
///
/// * results come back **in submission order**, one per job;
/// * equal jobs (same program text, params, layout) on the same
///   evaluator produce **identical** results;
/// * results do not depend on batch composition or thread count.
pub trait Evaluator {
    /// The machine being simulated.
    fn machine(&self) -> &MachineDesc;

    /// Measures every job, returning results in submission order.
    fn eval_batch(&self, jobs: &[EvalJob]) -> Vec<Result<Counters, ExecError>>;

    /// Measures a single job.
    ///
    /// # Errors
    ///
    /// Propagates the measurement error of the job.
    fn eval(&self, job: EvalJob) -> Result<Counters, ExecError> {
        self.eval_batch(std::slice::from_ref(&job))
            .pop()
            .expect("eval_batch returns one result per job")
    }

    /// Work totals so far (all zero for evaluators that do not track).
    fn stats(&self) -> EngineStats {
        EngineStats::default()
    }

    /// The observability event stream this evaluator writes to, if any.
    /// The search attaches its stage spans to the same stream, so one
    /// file tells the whole story of a run.
    fn events(&self) -> Option<&Arc<EventStream>> {
        None
    }
}

/// Process-wide metric handles, resolved once per engine so the hot
/// paths pay only relaxed atomic increments. Like
/// [`EngineStats::store_hits`], metrics are operational telemetry and
/// never enter run manifests or golden results.
#[derive(Debug)]
struct EngineMetrics {
    requested: Arc<Counter>,
    evaluated: Arc<Counter>,
    memo_hits: Arc<Counter>,
    store_hits: Arc<Counter>,
    dedup_waits: Arc<Counter>,
    errors: Arc<Counter>,
    ff_windows: Arc<Counter>,
    ff_accesses: Arc<Counter>,
    plan_compiles: Arc<Counter>,
    eval_duration_us: Arc<Histogram>,
}

impl EngineMetrics {
    fn resolve() -> EngineMetrics {
        let r = Registry::global();
        let c = |name: &str, help: &str| r.counter(name, help, &[]);
        EngineMetrics {
            requested: c(
                "eco_engine_points_requested_total",
                "Points submitted to eval_batch.",
            ),
            evaluated: c(
                "eco_engine_points_evaluated_total",
                "Unique points resolved (simulated or store-read).",
            ),
            memo_hits: c(
                "eco_engine_memo_hits_total",
                "Points served from the in-process memo cache.",
            ),
            store_hits: c(
                "eco_engine_store_hits_total",
                "Unique points served from the persistent store.",
            ),
            dedup_waits: c(
                "eco_engine_dedup_waits_total",
                "Points that waited on a concurrent batch's in-flight result.",
            ),
            errors: c(
                "eco_engine_eval_errors_total",
                "Unique points that failed to evaluate.",
            ),
            ff_windows: c(
                "eco_engine_ff_windows_total",
                "Simulator windows resolved by exact fast-forward.",
            ),
            ff_accesses: c(
                "eco_engine_ff_accesses_total",
                "Accesses accounted arithmetically by fast-forward.",
            ),
            plan_compiles: c(
                "eco_engine_plan_compiles_total",
                "Programs lowered to an executable plan.",
            ),
            eval_duration_us: r.histogram(
                "eco_engine_eval_duration_us",
                "Wall time per unique point (store read or simulation), microseconds.",
                &[],
                eco_metrics::LATENCY_US_BOUNDS,
            ),
        }
    }
}

/// The production [`Evaluator`]: a thread-pool simulator with a
/// content-addressed memo cache and optional JSONL telemetry.
#[derive(Debug)]
pub struct Engine {
    machine: MachineDesc,
    machine_fp: u64,
    threads: usize,
    memoize: bool,
    backend: ExecBackend,
    memo: Mutex<HashMap<EvalKey, Result<Counters, ExecError>>>,
    /// One lowered plan per program, keyed by the program component of
    /// [`EvalKey`]: re-evaluations at new parameter points skip lowering.
    plans: Mutex<HashMap<u64, Arc<ExecutablePlan>>>,
    stats: Mutex<EngineStats>,
    trace: Option<Mutex<BufWriter<File>>>,
    events: Option<Arc<EventStream>>,
    seq: AtomicUsize,
    /// The persistent second memo tier, when configured.
    store: Option<ResultStore>,
    /// Keys currently being evaluated by some batch on this engine.
    /// Concurrent batches wanting the same key block on the owner's
    /// cell instead of re-simulating. Lock order: `memo` before
    /// `inflight` (both are only ever taken in that order).
    inflight: Mutex<HashMap<EvalKey, Arc<InflightCell>>>,
    /// Live service metrics (process-wide registry handles).
    metrics: EngineMetrics,
}

/// The rendezvous for one in-flight evaluation: the owning batch fills
/// `done` and notifies; waiting batches block on the condvar.
#[derive(Debug)]
struct InflightCell {
    done: Mutex<Option<Result<Counters, ExecError>>>,
    cv: Condvar,
}

impl Default for InflightCell {
    fn default() -> Self {
        InflightCell {
            done: labeled_mutex("engine.inflight.cell", None),
            cv: labeled_condvar("engine.inflight.cv"),
        }
    }
}

impl InflightCell {
    fn fill(&self, result: Result<Counters, ExecError>) {
        *self.done.lock().expect("cell lock") = Some(result);
        self.cv.notify_all();
    }

    fn wait(&self) -> Result<Counters, ExecError> {
        let mut done = self.done.lock().expect("cell lock");
        while done.is_none() {
            done = self.cv.wait(done).expect("cell lock");
        }
        done.clone().expect("filled")
    }
}

/// Fills an in-flight cell with an error if the owner unwinds before
/// producing a result, so cross-batch waiters never hang on a panic.
struct CellGuard<'a> {
    cell: &'a InflightCell,
    armed: bool,
}

impl Drop for CellGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.cell
                .fill(Err(ExecError::Invalid("evaluation abandoned".to_string())));
        }
    }
}

impl Engine {
    /// An engine with the default configuration (auto threads,
    /// memoization on, no trace).
    pub fn new(machine: MachineDesc) -> Self {
        Engine::with_config(machine, EngineConfig::new()).expect("no trace file to open")
    }

    /// An engine with an explicit configuration.
    ///
    /// # Errors
    ///
    /// Fails only if a configured trace or event-stream file cannot be
    /// created ([`ExecError::Telemetry`]) or a configured store root
    /// cannot be opened ([`ExecError::Store`]) — detected here, before
    /// any evaluation runs, so a bad path fails fast.
    pub fn with_config(machine: MachineDesc, config: EngineConfig) -> Result<Self, ExecError> {
        Engine::with_config_and_events(machine, config, None)
    }

    /// Like [`with_config`](Self::with_config), but writing events to
    /// a caller-supplied stream instead of opening
    /// `config.events_path`. The `eco serve` daemon uses this to tail
    /// a live request's engine events over a `watch` connection.
    ///
    /// # Errors
    ///
    /// Fails like [`with_config`](Self::with_config).
    pub fn with_config_and_events(
        machine: MachineDesc,
        config: EngineConfig,
        injected_events: Option<Arc<EventStream>>,
    ) -> Result<Self, ExecError> {
        let telemetry_err = |kind: &str, path: &PathBuf, e: std::io::Error| ExecError::Telemetry {
            kind: kind.to_string(),
            path: path.display().to_string(),
            msg: e.to_string(),
        };
        let trace = match &config.trace_path {
            Some(path) => {
                let file = File::create(path).map_err(|e| telemetry_err("trace", path, e))?;
                Some(labeled_mutex("engine.trace", BufWriter::new(file)))
            }
            None => None,
        };
        let events = match (injected_events, &config.events_path) {
            (Some(stream), _) => Some(stream),
            (None, Some(path)) => Some(Arc::new(
                EventStream::to_file(path).map_err(|e| telemetry_err("events", path, e))?,
            )),
            (None, None) => None,
        };
        let store = match &config.store_path {
            Some(path) => Some(ResultStore::open(path).map_err(|e| ExecError::Store {
                path: path.display().to_string(),
                msg: e.msg,
            })?),
            None => None,
        };
        let mut fp = Fnv64::new();
        machine.hash(&mut fp);
        let machine_fp = fp.finish();
        if let Some(events) = &events {
            // Self-describing stream: record which machine model this
            // engine simulates, so analysis tools (`eco report`) can
            // resolve the machine from the stream alone.
            events.event(
                names::ENGINE_INIT,
                None,
                Attrs::new()
                    .str("machine", &machine.name)
                    .str("machine_fingerprint", format!("{machine_fp:#018x}"))
                    .str("backend", config.backend.name())
                    .bool("memoize", config.memoize),
            );
        }
        Ok(Engine {
            machine_fp,
            threads: resolve_threads(config.threads),
            memoize: config.memoize,
            backend: config.backend,
            memo: labeled_mutex("engine.memo", HashMap::new()),
            plans: labeled_mutex("engine.plans", HashMap::new()),
            stats: labeled_mutex("engine.stats", EngineStats::default()),
            trace,
            events,
            seq: AtomicUsize::new(0),
            store,
            inflight: labeled_mutex("engine.inflight", HashMap::new()),
            metrics: EngineMetrics::resolve(),
            machine,
        })
    }

    /// The persistent store's session counters, when one is configured.
    pub fn store_stats(&self) -> Option<eco_store::StoreStats> {
        self.store.as_ref().map(ResultStore::stats)
    }

    /// The number of worker threads this engine uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The execution backend this engine routes jobs through.
    pub fn backend(&self) -> ExecBackend {
        self.backend
    }

    /// The memoized plan for `program` (fingerprint `fp`), lowering it on
    /// first sight. Concurrent first sights may compile twice; the first
    /// insertion wins and is returned by both. Each actual compilation
    /// emits a `plan_compile` event carrying the lowering statistics.
    fn plan_for(&self, program: &Program, fp: u64) -> Result<Arc<ExecutablePlan>, ExecError> {
        if let Some(plan) = self.plans.lock().expect("plan lock").get(&fp) {
            return Ok(Arc::clone(plan));
        }
        let started = Instant::now();
        let plan = Arc::new(ExecutablePlan::compile(program)?);
        self.metrics.plan_compiles.inc();
        if let Some(events) = &self.events {
            let s = plan.lowering_stats();
            events.event(
                names::PLAN_COMPILE,
                None,
                Attrs::new()
                    .str("program", &program.name)
                    .str("fingerprint", format!("{fp:#018x}"))
                    .uint("wall_us", started.elapsed().as_micros() as u64)
                    .uint("insts", s.insts as u64)
                    .uint("sites", s.sites as u64)
                    .uint("vops", s.vops as u64)
                    .uint("fused_loops", s.fused_loops as u64)
                    .uint("guarded_runs", s.guarded_runs as u64)
                    .uint("hoisted_guards", s.hoisted_guards as u64),
            );
        }
        Ok(Arc::clone(
            self.plans
                .lock()
                .expect("plan lock")
                .entry(fp)
                .or_insert(plan),
        ))
    }

    /// The memo key of `job` on this engine.
    pub fn key(&self, job: &EvalJob) -> EvalKey {
        let mut h2 = Fnv64::new();
        h2.write_u64(self.machine_fp);
        h2.write_u64(job.layout.base_addr);
        h2.write_u64(job.layout.inter_array_pad_bytes);
        for &(v, val) in job.params.pairs() {
            h2.write_u32(v.index() as u32);
            h2.write_i64(val);
        }
        h2.write_u8(u8::from(job.attributed));
        EvalKey(program_fingerprint(&job.program), h2.finish())
    }

    /// The machine-description fingerprint folded into every memo key;
    /// recorded in run manifests.
    pub fn machine_fingerprint(&self) -> u64 {
        self.machine_fp
    }
}

/// The content fingerprint of a program: FNV-1a over its name and full
/// pretty-printed text. This is the program component of [`EvalKey`],
/// the plan-memoization key, and the `program_fingerprint` field of run
/// manifests.
pub fn program_fingerprint(program: &Program) -> u64 {
    let mut h = Fnv64::new();
    h.write(program.name.as_bytes());
    h.write(&[0]);
    h.write(program.to_string().as_bytes());
    h.finish()
}

/// How an output slot of a batch gets its result.
enum Slot {
    /// Served from the cross-batch memo cache.
    Memo(Result<Counters, ExecError>),
    /// Runs as unique job `u` of this batch.
    Run(usize),
    /// Duplicate of unique job `u` within this batch.
    Dup(usize),
    /// Identical point already in flight in a *concurrent* batch;
    /// blocks on wait cell `w` instead of re-simulating.
    Wait(usize),
}

impl Evaluator for Engine {
    fn machine(&self) -> &MachineDesc {
        &self.machine
    }

    fn eval_batch(&self, jobs: &[EvalJob]) -> Vec<Result<Counters, ExecError>> {
        let batch_start = Instant::now();
        // Phase 1: classify each job against the memo cache, within
        // the batch, and against concurrent batches' in-flight work,
        // preserving submission order in `slots`. Both locks are held
        // across the loop so a key's state (memoized / in flight /
        // fresh) cannot change mid-classification.
        let keys: Vec<EvalKey> = jobs.iter().map(|j| self.key(j)).collect();
        let mut slots: Vec<Slot> = Vec::with_capacity(jobs.len());
        let mut unique: Vec<usize> = Vec::new();
        let mut cells: Vec<Arc<InflightCell>> = Vec::new();
        let mut waits: Vec<Arc<InflightCell>> = Vec::new();
        if self.memoize {
            let memo = self.memo.lock().expect("memo lock");
            let mut inflight = self.inflight.lock().expect("inflight lock");
            let mut owner: HashMap<EvalKey, usize> = HashMap::new();
            for (i, k) in keys.iter().enumerate() {
                if let Some(hit) = memo.get(k) {
                    slots.push(Slot::Memo(hit.clone()));
                    continue;
                }
                match owner.entry(*k) {
                    Entry::Occupied(e) => slots.push(Slot::Dup(*e.get())),
                    Entry::Vacant(e) => {
                        if let Some(cell) = inflight.get(k) {
                            slots.push(Slot::Wait(waits.len()));
                            waits.push(Arc::clone(cell));
                            continue;
                        }
                        let cell = Arc::new(InflightCell::default());
                        inflight.insert(*k, Arc::clone(&cell));
                        e.insert(unique.len());
                        slots.push(Slot::Run(unique.len()));
                        unique.push(i);
                        cells.push(cell);
                    }
                }
            }
        } else {
            for i in 0..jobs.len() {
                slots.push(Slot::Run(unique.len()));
                unique.push(i);
            }
        }

        // Phase 2: run the unique jobs. Workers pull indices from a
        // shared cursor; each result lands in its own slot, so the
        // output is independent of scheduling. With a persistent store
        // configured, each unique point is looked up on disk first and
        // written back after simulating (the extra bool records a
        // store hit).
        // (result, wall_us, store_hit, (ff_windows, ff_accesses))
        type RunOutcome = (Result<Counters, ExecError>, u64, bool, (u64, u64));
        type RunSlot = Mutex<Option<RunOutcome>>;
        let ran: Vec<RunSlot> = unique.iter().map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        let run_one = |u: usize| {
            let job = &jobs[unique[u]];
            let key = keys[unique[u]];
            let guard = cells.get(u).map(|cell| CellGuard { cell, armed: true });
            let started = Instant::now();
            let store = self.store.as_ref().filter(|_| self.memoize);
            let stored = store.and_then(|s| s.get(StoreKey::new(key.0, key.1)));
            let store_hit = stored.is_some();
            let mut ff = (0u64, 0u64);
            let result = match stored {
                Some(counters) => Ok(counters),
                None => {
                    let result = match (self.backend, job.attributed) {
                        (ExecBackend::Compiled, false) => self
                            .plan_for(&job.program, key.0)
                            .and_then(|plan| {
                                plan.measure_with_stats(&job.params, &self.machine, &job.layout)
                            })
                            .map(|(c, s)| {
                                ff = (s.ff_windows, s.ff_accesses);
                                c
                            }),
                        (ExecBackend::Compiled, true) => self
                            .plan_for(&job.program, key.0)
                            .and_then(|plan| {
                                plan.measure_attributed_with_stats(
                                    &job.params,
                                    &self.machine,
                                    &job.layout,
                                )
                            })
                            .map(|(c, s)| {
                                ff = (s.ff_windows, s.ff_accesses);
                                c
                            }),
                        (ExecBackend::Reference, false) => {
                            measure_reference(&job.program, &job.params, &self.machine, &job.layout)
                        }
                        (ExecBackend::Reference, true) => measure_attributed_reference(
                            &job.program,
                            &job.params,
                            &self.machine,
                            &job.layout,
                        ),
                    };
                    // Persist successes only: errors are cheap to
                    // re-derive and need no on-disk encoding. A failed
                    // write degrades to a re-simulation next run, so
                    // it is reported (when events are on) but not
                    // fatal.
                    if let (Some(s), Ok(c)) = (store, &result) {
                        if let Err(e) = s.put(StoreKey::new(key.0, key.1), &job.program.name, c) {
                            if let Some(events) = &self.events {
                                events.event(
                                    names::STORE_ERROR,
                                    None,
                                    Attrs::new()
                                        .str("program", &job.program.name)
                                        .str("error", e.to_string()),
                                );
                            }
                        }
                    }
                    result
                }
            };
            let wall_us = started.elapsed().as_micros() as u64;
            self.metrics.eval_duration_us.observe(wall_us);
            if let Some(mut g) = guard {
                g.cell.fill(result.clone());
                g.armed = false;
            }
            *ran[u].lock().expect("slot lock") = Some((result, wall_us, store_hit, ff));
        };
        let workers = self.threads.min(unique.len());
        if workers <= 1 {
            for u in 0..unique.len() {
                run_one(u);
            }
        } else {
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|| loop {
                        let u = cursor.fetch_add(1, Ordering::Relaxed);
                        if u >= unique.len() {
                            break;
                        }
                        run_one(u);
                    });
                }
            });
        }
        let ran: Vec<RunOutcome> = ran
            .into_iter()
            .map(|m| m.into_inner().expect("slot lock").expect("slot filled"))
            .collect();
        // Collect results owed by concurrent batches. Owners never
        // wait (their own work is done above), so this cannot
        // deadlock; the owner's CellGuard fills abandoned cells, so a
        // panicking owner cannot strand us either.
        let waited: Vec<Result<Counters, ExecError>> =
            waits.iter().map(|cell| cell.wait()).collect();

        // Phase 3: publish to the memo cache, retire in-flight
        // registrations, update stats, emit trace records, and
        // assemble results in submission order.
        if self.memoize {
            let mut memo = self.memo.lock().expect("memo lock");
            for (u, &i) in unique.iter().enumerate() {
                memo.insert(keys[i], ran[u].0.clone());
            }
            let mut inflight = self.inflight.lock().expect("inflight lock");
            for &i in &unique {
                inflight.remove(&keys[i]);
            }
        }
        {
            let errors = ran.iter().filter(|(r, _, _, _)| r.is_err()).count() as u64;
            let store_hits = ran.iter().filter(|(_, _, hit, _)| *hit).count() as u64;
            let (mut ff_windows, mut ff_accesses) = (0u64, 0u64);
            for (_, _, _, (fw, fa)) in &ran {
                ff_windows += fw;
                ff_accesses += fa;
            }
            let mut stats = self.stats.lock().expect("stats lock");
            stats.requested += jobs.len() as u64;
            stats.evaluated += unique.len() as u64;
            stats.cache_hits += (jobs.len() - unique.len() - waits.len()) as u64;
            stats.errors += errors;
            stats.store_hits += store_hits;
            stats.dedup_waits += waits.len() as u64;
            stats.ff_windows += ff_windows;
            stats.ff_accesses += ff_accesses;
            drop(stats);
            let m = &self.metrics;
            m.requested.add(jobs.len() as u64);
            m.evaluated.add(unique.len() as u64);
            m.memo_hits
                .add((jobs.len() - unique.len() - waits.len()) as u64);
            m.errors.add(errors);
            m.store_hits.add(store_hits);
            m.dedup_waits.add(waits.len() as u64);
            m.ff_windows.add(ff_windows);
            m.ff_accesses.add(ff_accesses);
        }
        let mut out = Vec::with_capacity(jobs.len());
        for (i, slot) in slots.iter().enumerate() {
            let (result, cache_hit, wall_us, store_hit, dedup) = match slot {
                Slot::Memo(r) => (r.clone(), true, 0, false, false),
                Slot::Run(u) => (ran[*u].0.clone(), false, ran[*u].1, ran[*u].2, false),
                Slot::Dup(u) => (ran[*u].0.clone(), true, 0, false, false),
                Slot::Wait(w) => (waited[*w].clone(), true, 0, false, true),
            };
            if let Some(trace) = &self.trace {
                let seq = self.seq.fetch_add(1, Ordering::Relaxed);
                let line = trace_record(seq, &jobs[i], cache_hit, wall_us, &result);
                let mut w = trace.lock().expect("trace lock");
                let _ = writeln!(w, "{line}");
            }
            if let Some(events) = &self.events {
                let mut attrs = Attrs::new()
                    .str("label", &jobs[i].label)
                    .str("program", &jobs[i].program.name)
                    .bool("cache_hit", cache_hit)
                    .uint("wall_us", wall_us);
                // Service-layer provenance, only when it applies, so
                // store-less runs emit streams shaped exactly as
                // before.
                if self.store.is_some() {
                    attrs = attrs.bool("store_hit", store_hit);
                }
                if dedup {
                    attrs = attrs.bool("dedup", true);
                }
                attrs = match &result {
                    Ok(c) => {
                        let mut a = attrs
                            .str("status", "ok")
                            .uint("cycles", c.cycles())
                            .uint("loads", c.loads)
                            .uint("stores", c.stores)
                            .uint("flops", c.flops)
                            .uint("tlb_misses", c.tlb_misses);
                        for (ci, &m) in c.cache_misses.iter().enumerate() {
                            a = a.uint(&format!("miss_l{}", ci + 1), m);
                        }
                        // Per-array attribution, when the job asked for
                        // it: tag indices are `ArrayId` indices in the
                        // job's program.
                        for (ti, tag) in c.per_tag.iter().enumerate() {
                            a = a
                                .uint(&format!("tag{ti}_accesses"), tag.accesses)
                                .uint(&format!("tag{ti}_tlb_misses"), tag.tlb_misses);
                            for (ci, &m) in tag.misses.iter().enumerate() {
                                a = a.uint(&format!("tag{ti}_miss_l{}", ci + 1), m);
                            }
                        }
                        a
                    }
                    Err(e) => attrs.str("status", "error").str("error", e.to_string()),
                };
                events.event(names::POINT, jobs[i].span, attrs);
            }
            out.push(result);
        }
        if let Some(trace) = &self.trace {
            let _ = trace.lock().expect("trace lock").flush();
        }
        if let Some(events) = &self.events {
            let mut attrs = Attrs::new()
                .uint("jobs", jobs.len() as u64)
                .uint("unique", unique.len() as u64)
                .uint(
                    "memo_hits",
                    (jobs.len() - unique.len() - waits.len()) as u64,
                )
                .uint(
                    "errors",
                    ran.iter().filter(|(r, _, _, _)| r.is_err()).count() as u64,
                )
                .uint("workers", workers as u64)
                .uint("wall_us", batch_start.elapsed().as_micros() as u64);
            if self.store.is_some() {
                attrs = attrs.uint(
                    "store_hits",
                    ran.iter().filter(|(_, _, hit, _)| *hit).count() as u64,
                );
            }
            if !waits.is_empty() {
                attrs = attrs.uint("dedup_waits", waits.len() as u64);
            }
            events.event(names::BATCH, None, attrs);
            let s = self.stats();
            events.event(
                names::ENGINE_STATS,
                None,
                Attrs::new()
                    .uint("requested", s.requested)
                    .uint("evaluated", s.evaluated)
                    .uint("cache_hits", s.cache_hits)
                    .uint("errors", s.errors)
                    .uint("store_hits", s.store_hits)
                    .uint("dedup_waits", s.dedup_waits),
            );
            events.flush();
        }
        out
    }

    fn stats(&self) -> EngineStats {
        *self.stats.lock().expect("stats lock")
    }

    fn events(&self) -> Option<&Arc<EventStream>> {
        self.events.as_ref()
    }
}

/// Resolves a configured thread count: explicit > env > hardware.
fn resolve_threads(configured: usize) -> usize {
    if configured > 0 {
        return configured;
    }
    if let Ok(v) = std::env::var("ECO_EVAL_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// One JSONL trace record (hand-rolled: the workspace has no JSON dep).
fn trace_record(
    seq: usize,
    job: &EvalJob,
    cache_hit: bool,
    wall_us: u64,
    result: &Result<Counters, ExecError>,
) -> String {
    let mut s = String::with_capacity(256);
    let _ = write!(
        s,
        "{{\"seq\":{seq},\"label\":\"{}\",\"program\":\"{}\",\"params\":{{",
        json_escape(&job.label),
        json_escape(&job.program.name),
    );
    for (i, &(v, val)) in job.params.pairs().iter().enumerate() {
        let name = job.program.var(v).name.as_str();
        let _ = write!(
            s,
            "{}\"{}\":{val}",
            if i > 0 { "," } else { "" },
            json_escape(name)
        );
    }
    let _ = write!(s, "}},\"cache_hit\":{cache_hit},\"wall_us\":{wall_us}");
    match result {
        Ok(c) => {
            let _ = write!(
                s,
                ",\"status\":\"ok\",\"cycles\":{},\"loads\":{},\"stores\":{},\
                 \"prefetches\":{},\"flops\":{},\"tlb_misses\":{},\"cache_misses\":[",
                c.cycles(),
                c.loads,
                c.stores,
                c.prefetches,
                c.flops,
                c.tlb_misses,
            );
            for (i, m) in c.cache_misses.iter().enumerate() {
                let _ = write!(s, "{}{m}", if i > 0 { "," } else { "" });
            }
            s.push(']');
        }
        Err(e) => {
            let _ = write!(
                s,
                ",\"status\":\"error\",\"error\":\"{}\"",
                json_escape(&e.to_string())
            );
        }
    }
    s.push('}');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_ir::{AffineExpr, ArrayRef, Loop, Program, ScalarExpr, Stmt, VarId};

    /// `A[I] += 1` over `I in 0..N-1`.
    fn stream(name: &str) -> (Program, VarId) {
        let mut p = Program::new(name);
        let n = p.add_param("N");
        let i = p.add_loop_var("I");
        let a = p.add_array("A", vec![AffineExpr::var(n)]);
        let r = ArrayRef::new(a, vec![AffineExpr::var(i)]);
        p.body.push(Stmt::For(Loop {
            var: i,
            lo: 0.into(),
            hi: (AffineExpr::var(n) - AffineExpr::constant(1)).into(),
            step: 1,
            body: vec![Stmt::Store {
                target: r.clone(),
                value: ScalarExpr::add(ScalarExpr::Load(r), ScalarExpr::Const(1.0)),
            }],
        }));
        (p, n)
    }

    fn machine() -> MachineDesc {
        MachineDesc::sgi_r10000().scaled(32)
    }

    #[test]
    fn batch_results_match_serial_measure_in_order() {
        let (p, n) = stream("s");
        let engine = Engine::new(machine());
        let sizes = [16i64, 64, 32, 128];
        let jobs: Vec<EvalJob> = sizes
            .iter()
            .map(|&sz| EvalJob::new(p.clone(), Params::new().with(n, sz)))
            .collect();
        let got = engine.eval_batch(&jobs);
        for (&sz, r) in sizes.iter().zip(&got) {
            // The oracle walker: the compiled engine must match it exactly.
            let want = measure_reference(
                &p,
                &Params::new().with(n, sz),
                engine.machine(),
                &LayoutOptions::default(),
            );
            assert_eq!(r, &want, "size {sz}");
        }
        assert_eq!(engine.stats().evaluated, 4);
        assert_eq!(engine.stats().cache_hits, 0);
    }

    #[test]
    fn reference_backend_matches_compiled_and_plans_are_memoized() {
        let (p, n) = stream("s");
        let compiled = Engine::new(machine());
        let reference = Engine::with_config(
            machine(),
            EngineConfig::new().backend(ExecBackend::Reference),
        )
        .expect("engine");
        assert_eq!(compiled.backend(), ExecBackend::Compiled);
        assert_eq!(reference.backend(), ExecBackend::Reference);
        let jobs: Vec<EvalJob> = [8i64, 24, 48]
            .iter()
            .map(|&sz| EvalJob::new(p.clone(), Params::new().with(n, sz)))
            .collect();
        assert_eq!(compiled.eval_batch(&jobs), reference.eval_batch(&jobs));
        // One program at three parameter points: lowered exactly once.
        assert_eq!(compiled.plans.lock().expect("plan lock").len(), 1);
        assert_eq!(reference.plans.lock().expect("plan lock").len(), 0);
    }

    #[test]
    fn duplicates_within_and_across_batches_hit_cache() {
        let (p, n) = stream("s");
        let engine = Engine::new(machine());
        let job = || EvalJob::new(p.clone(), Params::new().with(n, 32));
        let first = engine.eval_batch(&[job(), job(), job()]);
        assert_eq!(first[0], first[1]);
        assert_eq!(first[1], first[2]);
        assert_eq!(engine.stats().evaluated, 1);
        assert_eq!(engine.stats().cache_hits, 2);
        let second = engine.eval(job()).expect("ok");
        assert_eq!(Ok(second), first[0]);
        assert_eq!(engine.stats().evaluated, 1, "second batch fully memoized");
        assert_eq!(engine.stats().cache_hits, 3);
        assert!(engine.stats().hit_rate() > 0.7);
    }

    #[test]
    fn distinct_layouts_params_and_programs_do_not_collide() {
        let (p, n) = stream("s");
        let (q, m) = stream("s2");
        let engine = Engine::new(machine());
        let base = EvalJob::new(p.clone(), Params::new().with(n, 32));
        let padded =
            EvalJob::new(p.clone(), Params::new().with(n, 32)).with_layout(LayoutOptions {
                base_addr: 0,
                inter_array_pad_bytes: 64,
            });
        let other_size = EvalJob::new(p.clone(), Params::new().with(n, 64));
        let other_prog = EvalJob::new(q, Params::new().with(m, 32));
        let keys = [
            engine.key(&base),
            engine.key(&padded),
            engine.key(&other_size),
            engine.key(&other_prog),
        ];
        for i in 0..keys.len() {
            for j in i + 1..keys.len() {
                assert_ne!(keys[i], keys[j], "keys {i} and {j} collide");
            }
        }
        // Label does not affect identity.
        assert_eq!(engine.key(&base), engine.key(&base.clone().with_label("x")));
    }

    #[test]
    fn errors_are_memoized() {
        let (p, _) = stream("s");
        let engine = Engine::new(machine());
        let job = || EvalJob::new(p.clone(), Params::new()); // N unbound
        assert!(engine.eval(job()).is_err());
        assert!(engine.eval(job()).is_err());
        let stats = engine.stats();
        assert_eq!(stats.evaluated, 1);
        assert_eq!(stats.errors, 1);
        assert_eq!(stats.cache_hits, 1);
    }

    #[test]
    fn memoize_off_reruns_everything() {
        let (p, n) = stream("s");
        let engine =
            Engine::with_config(machine(), EngineConfig::new().memoize(false)).expect("config");
        let job = || EvalJob::new(p.clone(), Params::new().with(n, 16));
        let r = engine.eval_batch(&[job(), job()]);
        assert_eq!(r[0], r[1]);
        assert_eq!(engine.stats().evaluated, 2);
        assert_eq!(engine.stats().cache_hits, 0);
    }

    #[test]
    fn parallel_and_serial_engines_agree() {
        let (p, n) = stream("s");
        let serial =
            Engine::with_config(machine(), EngineConfig::new().threads(1)).expect("config");
        let parallel =
            Engine::with_config(machine(), EngineConfig::new().threads(4)).expect("config");
        let jobs: Vec<EvalJob> = (1..=24)
            .map(|k| EvalJob::new(p.clone(), Params::new().with(n, 8 * k)))
            .collect();
        assert_eq!(serial.eval_batch(&jobs), parallel.eval_batch(&jobs));
    }

    #[test]
    fn trace_records_every_job_with_hit_flags() {
        let (p, n) = stream("s");
        let dir = std::env::temp_dir().join(format!("eco-engine-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("trace.jsonl");
        let engine =
            Engine::with_config(machine(), EngineConfig::new().trace(&path)).expect("config");
        let job =
            |sz: i64| EvalJob::new(p.clone(), Params::new().with(n, sz)).with_label("unit\"test");
        engine.eval_batch(&[job(16), job(16), job(32)]);
        let text = std::fs::read_to_string(&path).expect("trace written");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"seq\":0"));
        assert!(lines[0].contains("\"cache_hit\":false"));
        assert!(lines[1].contains("\"cache_hit\":true"), "{}", lines[1]);
        assert!(lines[0].contains("\"params\":{\"N\":16}"));
        assert!(lines[0].contains("\"status\":\"ok\""));
        assert!(lines[0].contains("\"label\":\"unit\\\"test\""));
        assert!(lines[2].contains("\"cycles\":"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn event_stream_records_points_batches_and_plan_compiles() {
        use eco_events::{check_stream, field};
        let (p, n) = stream("s");
        let dir = std::env::temp_dir().join(format!("eco-engine-events-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("events.jsonl");
        let engine =
            Engine::with_config(machine(), EngineConfig::new().events(&path)).expect("config");
        let job = |sz: i64| EvalJob::new(p.clone(), Params::new().with(n, sz)).with_label("t");
        engine.eval_batch(&[job(16), job(16), job(32)]);
        engine.eval_batch(&[job(32)]);
        let text = std::fs::read_to_string(&path).expect("events written");
        let summary = check_stream(&text).expect("valid stream");
        // 3 + 1 point events; one batch + engine_stats per eval_batch call;
        // one program lowered once => one plan_compile.
        assert_eq!(summary.events_named("point"), 4);
        assert_eq!(summary.events_named("batch"), 2);
        assert_eq!(summary.events_named("engine_stats"), 2);
        assert_eq!(summary.events_named("plan_compile"), 1);
        // Memo hits in point events must equal the engine's cache_hits.
        let hits = text
            .lines()
            .filter(|l| field(l, "name") == Some("point"))
            .filter(|l| field(l, "cache_hit") == Some("true"))
            .count() as u64;
        assert_eq!(hits, engine.stats().cache_hits);
        assert_eq!(engine.stats().cache_hits, 2);
        // The final engine_stats snapshot matches stats().
        let last = text
            .lines()
            .rfind(|l| field(l, "name") == Some("engine_stats"))
            .expect("snapshot");
        assert_eq!(field(last, "requested"), Some("4"));
        assert_eq!(field(last, "evaluated"), Some("2"));
        assert_eq!(field(last, "cache_hits"), Some("2"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn attributed_jobs_partition_counters_and_enrich_point_events() {
        use eco_events::field;
        let (p, n) = stream("s");
        let dir =
            std::env::temp_dir().join(format!("eco-engine-attributed-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("events.jsonl");
        let engine =
            Engine::with_config(machine(), EngineConfig::new().events(&path)).expect("config");
        let plain = EvalJob::new(p.clone(), Params::new().with(n, 32));
        let tagged = plain.clone().attributed(true);
        assert_ne!(
            engine.key(&plain),
            engine.key(&tagged),
            "distinct memo keys"
        );
        let results = engine.eval_batch(&[plain, tagged]);
        let (plain, tagged) = (
            results[0].as_ref().expect("ok"),
            results[1].as_ref().expect("ok"),
        );
        assert!(plain.per_tag.is_empty());
        assert!(!tagged.per_tag.is_empty());
        // Attribution never changes the aggregates.
        assert_eq!(plain.loads, tagged.loads);
        assert_eq!(plain.cache_misses, tagged.cache_misses);
        assert_eq!(plain.cycles(), tagged.cycles());
        assert_eq!(engine.stats().evaluated, 2, "no memo aliasing");
        engine.events().expect("events on").flush();
        let text = std::fs::read_to_string(&path).expect("events written");
        let points: Vec<&str> = text
            .lines()
            .filter(|l| field(l, "name") == Some("point"))
            .collect();
        assert_eq!(points.len(), 2);
        // Every point now carries the aggregate counters...
        for l in &points {
            for key in [
                "loads",
                "stores",
                "flops",
                "tlb_misses",
                "miss_l1",
                "miss_l2",
            ] {
                assert!(field(l, key).is_some(), "missing {key}: {l}");
            }
        }
        // ...and only the attributed one carries per-tag counters.
        assert!(field(points[0], "tag0_accesses").is_none(), "{}", points[0]);
        assert!(field(points[1], "tag0_accesses").is_some(), "{}", points[1]);
        assert!(field(points[1], "tag0_miss_l1").is_some(), "{}", points[1]);
        // The stream self-describes its machine.
        let init = text
            .lines()
            .find(|l| field(l, "name") == Some("engine_init"))
            .expect("engine_init");
        assert_eq!(field(init, "machine"), Some(machine().name.as_str()));
        assert!(field(init, "machine_fingerprint").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_tier_warm_starts_a_fresh_engine() {
        let (p, n) = stream("s");
        let dir = std::env::temp_dir().join(format!("eco-engine-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let jobs: Vec<EvalJob> = [16i64, 32, 64]
            .iter()
            .map(|&sz| EvalJob::new(p.clone(), Params::new().with(n, sz)))
            .collect();
        let cold = Engine::with_config(machine(), EngineConfig::new().store(&dir)).expect("cold");
        let first = cold.eval_batch(&jobs);
        assert_eq!(cold.stats().evaluated, 3);
        assert_eq!(cold.stats().store_hits, 0);
        assert_eq!(cold.store_stats().expect("store on").puts, 3);
        drop(cold);
        // A second engine (a second process, in the CLI workflows)
        // resolves every point from disk without simulating.
        let warm = Engine::with_config(machine(), EngineConfig::new().store(&dir)).expect("warm");
        let second = warm.eval_batch(&jobs);
        assert_eq!(first, second, "warm results byte-identical");
        let stats = warm.stats();
        assert_eq!(stats.evaluated, 3, "store hits still count as evaluated");
        assert_eq!(stats.store_hits, 3);
        assert_eq!(
            warm.plans.lock().expect("plan lock").len(),
            0,
            "no plan was ever lowered on the warm engine"
        );
        // memoize(false) bypasses the store entirely.
        let bypass = Engine::with_config(machine(), EngineConfig::new().store(&dir).memoize(false))
            .expect("bypass");
        bypass.eval_batch(&jobs);
        assert_eq!(bypass.stats().store_hits, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_batches_dedupe_in_flight_points() {
        let (p, n) = stream("s");
        let engine = Arc::new(
            Engine::with_config(machine(), EngineConfig::new().threads(2)).expect("engine"),
        );
        // Four threads request the same (expensive enough) point at
        // once. Exactly one simulation may run; the rest either dedupe
        // against the in-flight owner or hit the memo cache, but the
        // sum of non-owner paths is exact.
        let job = || EvalJob::new(p.clone(), Params::new().with(n, 4096));
        let mut results = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let engine = Arc::clone(&engine);
                    let job = job();
                    s.spawn(move || engine.eval(job))
                })
                .collect();
            for h in handles {
                results.push(h.join().expect("no panic"));
            }
        });
        for r in &results[1..] {
            assert_eq!(r, &results[0]);
        }
        let stats = engine.stats();
        assert_eq!(stats.requested, 4);
        assert_eq!(stats.evaluated, 1, "exactly one simulation ran");
        assert_eq!(
            stats.cache_hits + stats.dedup_waits,
            3,
            "everyone else was served without simulating: {stats:?}"
        );
    }

    #[test]
    fn engine_config_round_trips_through_json() {
        let configs = [
            EngineConfig::new(),
            EngineConfig::new()
                .threads(4)
                .memoize(false)
                .backend(ExecBackend::Reference)
                .trace("/tmp/t.jsonl")
                .events("/tmp/e.jsonl")
                .store("/tmp/store"),
        ];
        for config in configs {
            let doc = config.to_json();
            // Deterministic rendering: build twice, identical bytes.
            assert_eq!(doc.render(), config.to_json().render());
            let reparsed = Json::parse(&doc.render()).expect("parses");
            assert_eq!(EngineConfig::from_json(&reparsed), Ok(config.clone()));
            // And the re-rendered document is byte-identical too.
            assert_eq!(
                EngineConfig::from_json(&reparsed)
                    .expect("round trip")
                    .to_json()
                    .render(),
                doc.render()
            );
        }
        assert!(EngineConfig::from_json(&Json::obj()).is_err());
    }

    #[test]
    fn unusable_store_root_fails_fast() {
        let bad = PathBuf::from("/proc/nonexistent/store");
        let err =
            Engine::with_config(machine(), EngineConfig::new().store(&bad)).expect_err("must fail");
        match &err {
            ExecError::Store { path, .. } => {
                assert!(path.contains("/proc/nonexistent"), "{path}");
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert!(err.to_string().contains("cannot open result store"));
    }

    #[test]
    fn unwritable_telemetry_paths_fail_fast_with_clear_errors() {
        let bad = PathBuf::from("/nonexistent-dir/eco-telemetry.jsonl");
        for (kind, config) in [
            ("trace", EngineConfig::new().trace(&bad)),
            ("events", EngineConfig::new().events(&bad)),
        ] {
            let err = Engine::with_config(machine(), config).expect_err("must fail");
            match &err {
                ExecError::Telemetry { kind: k, path, .. } => {
                    assert_eq!(k, kind);
                    assert_eq!(path, &bad.display().to_string());
                }
                other => panic!("unexpected error {other:?}"),
            }
            let msg = err.to_string();
            assert!(msg.contains(&format!("cannot create {kind} file")), "{msg}");
            assert!(!msg.contains("invalid program"), "{msg}");
        }
    }
}
