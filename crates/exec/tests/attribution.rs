//! Attribution-mode measurement: per-array counters must partition the
//! global ones exactly.

use eco_exec::{measure, measure_attributed, LayoutOptions, Params};
use eco_kernels::Kernel;
use eco_machine::MachineDesc;

#[test]
fn attribution_partitions_global_counters() {
    let kernel = Kernel::matmul();
    let machine = MachineDesc::sgi_r10000().scaled(32);
    let params = Params::new().with(kernel.size, 48);
    let plain = measure(
        &kernel.program,
        &params,
        &machine,
        &LayoutOptions::default(),
    )
    .expect("measure");
    let tagged = measure_attributed(
        &kernel.program,
        &params,
        &machine,
        &LayoutOptions::default(),
    )
    .expect("measure attributed");
    // Attribution must not change the simulation itself.
    assert_eq!(plain.loads, tagged.loads);
    assert_eq!(plain.cache_misses, tagged.cache_misses);
    assert_eq!(plain.cycles_x1000, tagged.cycles_x1000);
    // ... and must partition accesses and misses exactly.
    assert_eq!(tagged.per_tag.len(), kernel.program.arrays.len());
    let acc: u64 = tagged.per_tag.iter().map(|t| t.accesses).sum();
    assert_eq!(acc, tagged.loads + tagged.stores);
    for level in 0..machine.caches.len() {
        let m: u64 = tagged.per_tag.iter().map(|t| t.misses[level]).sum();
        assert_eq!(m, tagged.cache_misses[level], "level {level}");
    }
    let tlb: u64 = tagged.per_tag.iter().map(|t| t.tlb_misses).sum();
    assert_eq!(tlb, tagged.tlb_misses);
}

#[test]
fn attribution_reflects_access_patterns() {
    // In the KJI kernel, C (the accumulator) is touched twice per
    // iteration; A and B once each.
    let kernel = Kernel::matmul();
    let machine = MachineDesc::sgi_r10000().scaled(32);
    let params = Params::new().with(kernel.size, 16);
    let c = measure_attributed(
        &kernel.program,
        &params,
        &machine,
        &LayoutOptions::default(),
    )
    .expect("measure");
    let n3 = 16u64 * 16 * 16;
    let a = kernel.program.array_by_name("A").expect("A").index();
    let cc = kernel.program.array_by_name("C").expect("C").index();
    assert_eq!(c.per_tag[a].accesses, n3);
    assert_eq!(c.per_tag[cc].accesses, 2 * n3);
}
