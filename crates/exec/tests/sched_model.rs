//! Checker model driving the *real* engine memo/in-flight dedupe under
//! the controlled scheduler (`--cfg eco_sched`): concurrent batches
//! racing the same evaluation key must agree byte-for-byte, account for
//! every job exactly once (`evaluated + cache_hits + dedup_waits ==
//! requested`), and never evaluate a key twice.
#![cfg(eco_sched)]

use eco_exec::{Engine, EngineConfig, EvalJob, Evaluator, ExecBackend, Params};
use eco_ir::{AffineExpr, ArrayRef, Loop, Program, ScalarExpr, Stmt, VarId};
use eco_machine::MachineDesc;
use eco_sched::model::{self, check};
use eco_sched::{explore, Config, DiagCode};
use std::sync::Arc;
use std::sync::Mutex as StdMutex;

/// `A[I] += 1` over `I in 0..N-1` — the smallest real program the
/// reference walker measures, so every schedule pays one tiny
/// simulation, not a matmul.
fn stream() -> (Program, VarId) {
    let mut p = Program::new("sched-stream");
    let n = p.add_param("N");
    let i = p.add_loop_var("I");
    let a = p.add_array("A", vec![AffineExpr::var(n)]);
    let r = ArrayRef::new(a, vec![AffineExpr::var(i)]);
    p.body.push(Stmt::For(Loop {
        var: i,
        lo: 0.into(),
        hi: (AffineExpr::var(n) - AffineExpr::constant(1)).into(),
        step: 1,
        body: vec![Stmt::Store {
            target: r.clone(),
            value: ScalarExpr::add(ScalarExpr::Load(r), ScalarExpr::Const(1.0)),
        }],
    }));
    (p, n)
}

#[test]
fn memo_dedupe_accounting_holds_in_every_schedule() {
    let report = explore(
        Config {
            max_schedules: 1_000,
            ..Config::default()
        },
        || {
            let (p, n) = stream();
            let engine = Arc::new(
                Engine::with_config(
                    MachineDesc::sgi_r10000().scaled(32),
                    EngineConfig::new()
                        .threads(1)
                        .backend(ExecBackend::Reference),
                )
                .expect("engine"),
            );
            // Results land keyed by thread so the duplicate pair can be
            // compared at quiescence (plain std mutex: bookkeeping,
            // not part of the modeled protocol).
            let seen = Arc::new(StdMutex::new(Vec::new()));
            let threads: Vec<_> = [(0u64, 16i64), (1, 16), (2, 24)]
                .into_iter()
                .map(|(id, size)| {
                    let engine = Arc::clone(&engine);
                    let seen = Arc::clone(&seen);
                    let (p, n) = (p.clone(), n);
                    model::thread::spawn(&format!("batch-{id}"), move || {
                        let job = EvalJob::new(p, Params::new().with(n, size));
                        let result = engine.eval(job);
                        seen.lock().unwrap().push((size, result));
                    })
                })
                .collect();
            for t in threads {
                t.join();
            }
            let seen = seen.lock().unwrap();
            // The two batches that requested the same key must agree
            // byte-for-byte, whether the loser joined via the memo
            // cache or an in-flight cell.
            let same: Vec<_> = seen.iter().filter(|(s, _)| *s == 16).collect();
            check(DiagCode::DedupeByteMismatch, same.len() == 2, || {
                format!("{} of 2 duplicate batches returned", same.len())
            });
            check(DiagCode::DedupeByteMismatch, same[0].1 == same[1].1, || {
                "duplicate key evaluated to different counters".to_string()
            });
            let stats = engine.stats();
            check(DiagCode::DedupeByteMismatch, stats.errors == 0, || {
                format!("{} evaluation errors", stats.errors)
            });
            check(DiagCode::DedupeByteMismatch, stats.requested == 3, || {
                format!("requested {} of 3", stats.requested)
            });
            // Exactly one evaluation per distinct key: the duplicate is
            // a memo hit or a dedupe wait, never a recomputation.
            check(DiagCode::DedupeByteMismatch, stats.evaluated == 2, || {
                format!("evaluated {} times for 2 distinct keys", stats.evaluated)
            });
            check(
                DiagCode::DedupeByteMismatch,
                stats.evaluated + stats.cache_hits + stats.dedup_waits == stats.requested,
                || {
                    format!(
                        "accounting leak: evaluated {} + hits {} + waits {} != requested {}",
                        stats.evaluated, stats.cache_hits, stats.dedup_waits, stats.requested
                    )
                },
            );
        },
    );
    assert!(
        report.is_clean(),
        "engine memo dedupe reported: {:?}",
        report.diags
    );
    assert!(
        report.schedules >= 100,
        "only {} schedules",
        report.schedules
    );
    // The documented lock order (`memo` before `inflight`) is the only
    // nesting the protocol ever creates.
    for (from, to) in &report.edges {
        if from.starts_with("engine.") && to.starts_with("engine.") {
            assert_eq!(
                (from.as_str(), to.as_str()),
                ("engine.memo", "engine.inflight"),
                "undocumented engine lock nesting"
            );
        }
    }
}
