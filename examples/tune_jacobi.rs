//! Tuning the 3-D Jacobi stencil (the paper's second case study) on
//! both machine models, showing the variant forking that happens when
//! every loop carries temporal reuse.
//!
//! ```text
//! cargo run --release --example tune_jacobi
//! ```

use eco_analysis::NestInfo;
use eco_baselines::native;
use eco_core::{derive_variants, Optimizer, SearchOptions};
use eco_exec::{Engine, EvalJob, Evaluator, Params};
use eco_kernels::Kernel;
use eco_machine::MachineDesc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernel = Kernel::jacobi3d();
    let nest = NestInfo::from_program(&kernel.program)?;

    for base in [MachineDesc::sgi_r10000(), MachineDesc::ultrasparc_iie()] {
        let machine = base.scaled(32);
        println!("=== {} ===", machine.name);

        let variants = derive_variants(&nest, &machine, &kernel.program);
        let mut carriers: Vec<String> = variants
            .iter()
            .map(|v| kernel.program.var(v.register_carrier()).name.clone())
            .collect();
        carriers.sort();
        carriers.dedup();
        println!(
            "{} variants derived; register carriers: {} (every loop carries reuse)",
            variants.len(),
            carriers.join(", ")
        );

        let engine = Engine::new(machine.clone());
        let mut opt = Optimizer::new(machine.clone());
        opt.opts = SearchOptions::builder().search_n(40).build()?;
        let eco = opt.run_with(&kernel, &engine)?;
        println!(
            "ECO selected {} with {:?}, prefetches {:?} ({} points)",
            eco.variant.name, eco.params, eco.prefetches, eco.stats.points
        );
        let nat = native(&kernel, &machine)?;

        println!("{:>6} {:>10} {:>10}  (MFLOPS)", "N", "ECO", "Native");
        let sizes = [16i64, 24, 32, 48, 64];
        let mut jobs = Vec::new();
        for &n in &sizes {
            let params = Params::new().with(kernel.size, n);
            jobs.push(
                EvalJob::new(eco.program.clone(), params.clone()).with_label(format!("eco/N={n}")),
            );
            jobs.push(
                EvalJob::new(nat.for_size(n).clone(), params).with_label(format!("native/N={n}")),
            );
        }
        let results = engine.eval_batch(&jobs);
        for (i, &n) in sizes.iter().enumerate() {
            let e = results[2 * i].as_ref().map_err(|e| e.to_string())?;
            let nv = results[2 * i + 1].as_ref().map_err(|e| e.to_string())?;
            println!(
                "{n:>6} {:>10.1} {:>10.1}",
                e.mflops(machine.clock_mhz),
                nv.mflops(machine.clock_mhz)
            );
        }
        println!();
    }
    Ok(())
}
