//! Tuning the 3-D Jacobi stencil (the paper's second case study) on
//! both machine models, showing the variant forking that happens when
//! every loop carries temporal reuse.
//!
//! ```text
//! cargo run --release --example tune_jacobi
//! ```

use eco_analysis::NestInfo;
use eco_baselines::native;
use eco_core::{derive_variants, Optimizer};
use eco_exec::{measure, LayoutOptions, Params};
use eco_kernels::Kernel;
use eco_machine::MachineDesc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernel = Kernel::jacobi3d();
    let nest = NestInfo::from_program(&kernel.program)?;

    for base in [MachineDesc::sgi_r10000(), MachineDesc::ultrasparc_iie()] {
        let machine = base.scaled(32);
        println!("=== {} ===", machine.name);

        let variants = derive_variants(&nest, &machine, &kernel.program);
        let mut carriers: Vec<String> = variants
            .iter()
            .map(|v| kernel.program.var(v.register_carrier()).name.clone())
            .collect();
        carriers.sort();
        carriers.dedup();
        println!(
            "{} variants derived; register carriers: {} (every loop carries reuse)",
            variants.len(),
            carriers.join(", ")
        );

        let mut opt = Optimizer::new(machine.clone());
        opt.opts.search_n = 40;
        let eco = opt.optimize(&kernel)?;
        println!(
            "ECO selected {} with {:?}, prefetches {:?} ({} points)",
            eco.variant.name, eco.params, eco.prefetches, eco.stats.points
        );
        let nat = native(&kernel, &machine)?;

        println!("{:>6} {:>10} {:>10}  (MFLOPS)", "N", "ECO", "Native");
        for n in [16i64, 24, 32, 48, 64] {
            let run = |p: &eco_ir::Program| -> Result<f64, Box<dyn std::error::Error>> {
                let params = Params::new().with(kernel.size, n);
                let c = measure(p, &params, &machine, &LayoutOptions::default())?;
                Ok(c.mflops(machine.clock_mhz))
            };
            println!(
                "{n:>6} {:>10.1} {:>10.1}",
                run(&eco.program)?,
                run(nat.for_size(n))?
            );
        }
        println!();
    }
    Ok(())
}
