//! Full Matrix Multiply walkthrough: Phase 1 variant derivation (the
//! paper's Table 4), Phase 2 guided search, and a comparison against the
//! native-compiler-like, ATLAS-like and vendor-BLAS-like baselines.
//!
//! ```text
//! cargo run --release --example tune_matmul
//! ```

use eco_analysis::NestInfo;
use eco_baselines::{atlas_mm, native, vendor_mm};
use eco_core::{derive_variants, describe_variant, Optimizer};
use eco_exec::{measure, LayoutOptions, Params};
use eco_kernels::Kernel;
use eco_machine::MachineDesc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = MachineDesc::sgi_r10000().scaled(32);
    let kernel = Kernel::matmul();
    let nest = NestInfo::from_program(&kernel.program)?;

    // ---- Phase 1: derive the parameterized variants (cf. Table 4) ----
    let variants = derive_variants(&nest, &machine, &kernel.program);
    println!("derived {} variants:", variants.len());
    for v in variants.iter().take(4) {
        println!("{}:", v.name);
        print!("{}", describe_variant(v, &nest, &kernel.program));
    }
    if variants.len() > 4 {
        println!("... ({} more)", variants.len() - 4);
    }

    // ---- Phase 2: the guided empirical search ----
    let mut opt = Optimizer::new(machine.clone());
    opt.opts.search_n = 120;
    opt.opts.robustness_sizes = vec![128];
    let eco = opt.optimize(&kernel)?;
    println!(
        "\nECO selected {} with {:?} and prefetches {:?} in {} points",
        eco.variant.name, eco.params, eco.prefetches, eco.stats.points
    );

    // ---- Baselines ----
    let nat = native(&kernel, &machine)?;
    let atlas = atlas_mm(&machine, 96)?;
    let vendor = vendor_mm(&machine, 120)?;
    println!(
        "ATLAS-like search: NB={}, register tile {}x{}, {} points",
        atlas.nb, atlas.mu_nu.0, atlas.mu_nu.1, atlas.points
    );

    println!(
        "\n{:>6} {:>10} {:>10} {:>10} {:>10}  (MFLOPS)",
        "N", "ECO", "Native", "ATLAS", "Vendor"
    );
    for n in [48i64, 64, 96, 128, 192, 256] {
        let run = |p: &eco_ir::Program| -> Result<f64, Box<dyn std::error::Error>> {
            let params = Params::new().with(kernel.size, n);
            let c = measure(p, &params, &machine, &LayoutOptions::default())?;
            Ok(c.mflops(machine.clock_mhz))
        };
        println!(
            "{n:>6} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            run(&eco.program)?,
            run(nat.for_size(n))?,
            run(atlas.program.for_size(n))?,
            run(vendor.for_size(n))?
        );
    }
    Ok(())
}
