//! Full Matrix Multiply walkthrough: Phase 1 variant derivation (the
//! paper's Table 4), Phase 2 guided search, and a comparison against the
//! native-compiler-like, ATLAS-like and vendor-BLAS-like baselines.
//!
//! ```text
//! cargo run --release --example tune_matmul
//! ```

use eco_analysis::NestInfo;
use eco_baselines::{atlas_mm_with, native, vendor_mm_with};
use eco_core::{derive_variants, describe_variant, Optimizer, SearchOptions};
use eco_exec::{Engine, EvalJob, Evaluator, Params};
use eco_kernels::Kernel;
use eco_machine::MachineDesc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = MachineDesc::sgi_r10000().scaled(32);
    let kernel = Kernel::matmul();
    let nest = NestInfo::from_program(&kernel.program)?;

    // ---- Phase 1: derive the parameterized variants (cf. Table 4) ----
    let variants = derive_variants(&nest, &machine, &kernel.program);
    println!("derived {} variants:", variants.len());
    for v in variants.iter().take(4) {
        println!("{}:", v.name);
        print!("{}", describe_variant(v, &nest, &kernel.program));
    }
    if variants.len() > 4 {
        println!("... ({} more)", variants.len() - 4);
    }

    // One engine serves ECO's search, both empirical baselines and the
    // final comparison sweep, so repeated points are memo hits.
    let engine = Engine::new(machine.clone());

    // ---- Phase 2: the guided empirical search ----
    let mut opt = Optimizer::new(machine.clone());
    opt.opts = SearchOptions::builder()
        .search_n(120)
        .robustness_sizes(vec![128])
        .build()?;
    let eco = opt.run_with(&kernel, &engine)?;
    println!(
        "\nECO selected {} with {:?} and prefetches {:?} in {} points",
        eco.variant.name, eco.params, eco.prefetches, eco.stats.points
    );

    // ---- Baselines ----
    let nat = native(&kernel, &machine)?;
    let atlas = atlas_mm_with(&engine, 96)?;
    let vendor = vendor_mm_with(&engine, 120)?;
    println!(
        "ATLAS-like search: NB={}, register tile {}x{}, {} points",
        atlas.nb, atlas.mu_nu.0, atlas.mu_nu.1, atlas.points
    );

    println!(
        "\n{:>6} {:>10} {:>10} {:>10} {:>10}  (MFLOPS)",
        "N", "ECO", "Native", "ATLAS", "Vendor"
    );
    let sizes = [48i64, 64, 96, 128, 192, 256];
    let mut jobs = Vec::new();
    for &n in &sizes {
        let params = Params::new().with(kernel.size, n);
        for (tag, p) in [
            ("eco", &eco.program),
            ("native", nat.for_size(n)),
            ("atlas", atlas.program.for_size(n)),
            ("vendor", vendor.for_size(n)),
        ] {
            jobs.push(EvalJob::new(p.clone(), params.clone()).with_label(format!("{tag}/N={n}")));
        }
    }
    let results = engine.eval_batch(&jobs);
    for (i, &n) in sizes.iter().enumerate() {
        let mut row = format!("{n:>6}");
        for j in 0..4 {
            let c = results[4 * i + j].as_ref().map_err(|e| e.to_string())?;
            row.push_str(&format!(" {:>10.1}", c.mflops(machine.clock_mhz)));
        }
        println!("{row}");
    }
    let stats = engine.stats();
    println!(
        "\nengine: {} points requested, {} evaluated, {} memo hits ({:.0}% hit rate)",
        stats.requested,
        stats.evaluated,
        stats.cache_hits,
        stats.hit_rate() * 100.0
    );
    Ok(())
}
