//! Quickstart: tune Matrix Multiply for a scaled SGI R10000 and compare
//! against the untransformed kernel.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use eco_core::Optimizer;
use eco_exec::{measure, LayoutOptions, Params};
use eco_kernels::Kernel;
use eco_machine::MachineDesc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pick a machine model. The paper's SGI R10000, shrunk 32x so the
    //    simulation runs in seconds (see DESIGN.md on scaling).
    let machine = MachineDesc::sgi_r10000().scaled(32);
    println!("machine: {machine}");

    // 2. Pick a kernel (Figure 1(a) of the paper).
    let kernel = Kernel::matmul();
    println!("\nkernel:\n{}", kernel.program);

    // 3. Run ECO: model-driven variant derivation plus guided empirical
    //    search, executing candidates on the simulated machine.
    let mut opt = Optimizer::new(machine.clone());
    opt.opts.search_n = 96;
    let tuned = opt.optimize(&kernel)?;
    println!(
        "ECO selected {} with parameters {:?} and prefetches {:?}",
        tuned.variant.name, tuned.params, tuned.prefetches
    );
    println!(
        "search executed {} code versions ({} variants derived, {} searched)",
        tuned.stats.points, tuned.stats.variants_derived, tuned.stats.variants_searched
    );
    println!("\ngenerated code:\n{}", tuned.program);

    // 4. Compare against the naive kernel across sizes.
    println!("{:>6} {:>12} {:>12}", "N", "naive", "ECO");
    for n in [32i64, 64, 128, 192] {
        let params = Params::new().with(kernel.size, n);
        let naive = measure(&kernel.program, &params, &machine, &LayoutOptions::default())?;
        let eco = measure(&tuned.program, &params, &machine, &LayoutOptions::default())?;
        println!(
            "{n:>6} {:>12.1} {:>12.1}",
            naive.mflops(machine.clock_mhz),
            eco.mflops(machine.clock_mhz)
        );
    }
    Ok(())
}
