//! Quickstart: tune Matrix Multiply for a scaled SGI R10000 and compare
//! against the untransformed kernel.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use eco_core::{SearchOptions, TuneRequest};
use eco_exec::{Engine, EvalJob, Evaluator, Params};
use eco_kernels::Kernel;
use eco_machine::MachineDesc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pick a machine model. The paper's SGI R10000, shrunk 32x so the
    //    simulation runs in seconds (see DESIGN.md on scaling).
    let machine = MachineDesc::sgi_r10000().scaled(32);
    println!("machine: {machine}");

    // 2. Pick a kernel (Figure 1(a) of the paper).
    let kernel = Kernel::matmul();
    println!("\nkernel:\n{}", kernel.program);

    // 3. Run ECO: model-driven variant derivation plus guided empirical
    //    search. Every candidate executes on the parallel memoized
    //    evaluation engine; the response pairs the tuned result with the
    //    engine's work statistics.
    let report = TuneRequest::new(kernel.clone(), machine.clone())
        .options(SearchOptions::builder().search_n(96).build()?)
        .run()?;
    let tuned = &report.tuned;
    println!(
        "ECO selected {} with parameters {:?} and prefetches {:?}",
        tuned.variant.name, tuned.params, tuned.prefetches
    );
    println!(
        "search executed {} code versions ({} variants derived, {} searched)",
        tuned.stats.points, tuned.stats.variants_derived, tuned.stats.variants_searched
    );
    println!(
        "engine evaluated {} points, served {} from the memo cache ({:.0}% hit rate)",
        report.engine.evaluated,
        report.engine.cache_hits,
        report.engine.hit_rate() * 100.0
    );
    println!("\ngenerated code:\n{}", tuned.program);

    // 4. Compare against the naive kernel across sizes: submit all the
    //    measurements as one batch; results come back in submission
    //    order regardless of how many threads evaluate them.
    let engine = Engine::new(machine.clone());
    let sizes = [32i64, 64, 128, 192];
    let mut jobs = Vec::new();
    for &n in &sizes {
        let params = Params::new().with(kernel.size, n);
        jobs.push(
            EvalJob::new(kernel.program.clone(), params.clone()).with_label(format!("naive/N={n}")),
        );
        jobs.push(EvalJob::new(tuned.program.clone(), params).with_label(format!("eco/N={n}")));
    }
    let results = engine.eval_batch(&jobs);
    println!("{:>6} {:>12} {:>12}", "N", "naive", "ECO");
    for (i, &n) in sizes.iter().enumerate() {
        let naive = results[2 * i].as_ref().map_err(|e| e.to_string())?;
        let eco = results[2 * i + 1].as_ref().map_err(|e| e.to_string())?;
        println!(
            "{n:>6} {:>12.1} {:>12.1}",
            naive.mflops(machine.clock_mhz),
            eco.mflops(machine.clock_mhz)
        );
    }
    Ok(())
}
