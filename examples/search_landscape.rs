//! Visualizes the search landscape the guided search navigates: a full
//! TJ × TK grid of measured cycles for one Matrix Multiply variant,
//! annotated with the point ECO's staged search actually selected.
//!
//! This is the space the paper's §2 calls "difficult to model
//! analytically": the best point balances L1, L2 and TLB behaviour
//! rather than minimizing any single counter.
//!
//! The whole grid is submitted to the evaluation engine as one batch,
//! and the guided search then runs against the same engine — any grid
//! point it revisits is a memo hit instead of a re-simulation.
//!
//! ```text
//! cargo run --release --example search_landscape
//! ```

use eco_analysis::NestInfo;
use eco_core::{derive_variants, generate, Optimizer, SearchOptions};
use eco_exec::{Engine, EvalJob, Evaluator, Params};
use eco_kernels::Kernel;
use eco_machine::MachineDesc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = MachineDesc::sgi_r10000().scaled(32);
    let kernel = Kernel::matmul();
    let nest = NestInfo::from_program(&kernel.program)?;
    let n = 96i64;

    // Pick the first full three-level variant with both copies.
    let variants = derive_variants(&nest, &machine, &kernel.program);
    let variant = variants
        .iter()
        .find(|v| v.levels.iter().filter(|l| l.copy.is_some()).count() == 2)
        .unwrap_or(&variants[0]);
    println!(
        "variant {} at N={n} on {}; cycles (millions) over the TJ x TK grid:",
        variant.name, machine.name
    );

    let engine = Engine::new(machine.clone());
    let opt = Optimizer::new(machine.clone());
    let base = opt.initial_params(variant);
    let tjs = [4u64, 8, 16, 32, 64, 128];
    let tks = [2u64, 4, 8, 16];

    // Generate the whole grid first, then evaluate it as one batch.
    let mut cells: Vec<Option<usize>> = Vec::new(); // grid cell -> job index
    let mut jobs = Vec::new();
    for &tj in &tjs {
        for &tk in &tks {
            let mut params = base.clone();
            params.insert("TJ".into(), tj);
            params.insert("TK".into(), tk);
            match generate(&kernel, &nest, variant, &params, &machine) {
                Ok(program) => {
                    let exec = Params::new().with(kernel.size, n);
                    cells.push(Some(jobs.len()));
                    jobs.push(
                        EvalJob::new(program, exec).with_label(format!("grid/TJ={tj}/TK={tk}")),
                    );
                }
                Err(_) => cells.push(None),
            }
        }
    }
    let results = engine.eval_batch(&jobs);

    print!("{:>8}", "TJ\\TK");
    for &tk in &tks {
        print!("{tk:>9}");
    }
    println!();
    let mut best: Option<(u64, u64, u64)> = None;
    for (ti, &tj) in tjs.iter().enumerate() {
        print!("{tj:>8}");
        for (ki, &tk) in tks.iter().enumerate() {
            match cells[ti * tks.len() + ki].map(|j| &results[j]) {
                Some(Ok(c)) => {
                    print!("{:>9.2}", c.cycles() as f64 / 1e6);
                    if best.is_none_or(|(_, _, b)| c.cycles() < b) {
                        best = Some((tj, tk, c.cycles()));
                    }
                }
                _ => print!("{:>9}", "-"),
            }
        }
        println!();
    }
    if let Some((tj, tk, cycles)) = best {
        println!(
            "\ngrid optimum: TJ={tj} TK={tk} at {:.2}M cycles",
            cycles as f64 / 1e6
        );
    }

    // Where does the guided search land, and how many points did it pay?
    let mut opt = Optimizer::new(machine.clone());
    opt.opts = SearchOptions::builder().search_n(n).build()?;
    let tuned = opt.run_with(&kernel, &engine)?;
    let stats = engine.stats();
    println!(
        "guided search: variant {} {:?} in {} points (grid above alone is {})",
        tuned.variant.name,
        tuned.params,
        tuned.stats.points,
        tjs.len() * tks.len(),
    );
    println!(
        "engine: {} evaluated, {} memo hits ({:.0}% hit rate)",
        stats.evaluated,
        stats.cache_hits,
        stats.hit_rate() * 100.0
    );
    Ok(())
}
